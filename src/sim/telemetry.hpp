// Telemetry produced by the simulated processor: one sample per DVFS control
// interval (what the power controller observes) and one record per completed
// application execution (what the evaluation tables report).
#pragma once

#include <string>
#include <vector>

namespace fedpower::sim {

/// Aggregated counters over one control interval.
struct TelemetrySample {
  double time_s = 0.0;       ///< simulation time at the end of the interval
  std::size_t level = 0;     ///< V/f level active during the interval
  double freq_mhz = 0.0;
  double voltage_v = 0.0;
  double power_w = 0.0;      ///< measured average power (sensor noise applied)
  double true_power_w = 0.0; ///< noise-free average power
  double energy_j = 0.0;
  double instructions = 0.0;
  double cycles = 0.0;
  double ipc = 0.0;          ///< instructions / cycles (stalls included)
  double miss_rate = 0.0;    ///< LLC miss rate over the interval
  double mpki = 0.0;         ///< LLC misses per kilo-instruction
  double ips = 0.0;          ///< instructions per second
  double temperature_c = 0.0;///< die temperature (0 if thermal model off)
  std::string app_name;      ///< application active at the end of the interval
};

/// One completed application run.
struct AppExecution {
  std::string name;
  double start_time_s = 0.0;
  double exec_time_s = 0.0;
  double energy_j = 0.0;
  double instructions = 0.0;
  double avg_power_w = 0.0;  ///< energy / exec_time
  double avg_ips = 0.0;      ///< instructions / exec_time
};

/// Append-only trace of interval samples, with summary helpers.
class TraceRecorder {
 public:
  void record(const TelemetrySample& sample) { samples_.push_back(sample); }
  void clear() noexcept { samples_.clear(); }

  const std::vector<TelemetrySample>& samples() const noexcept {
    return samples_;
  }
  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double mean_power() const noexcept;
  double mean_freq_mhz() const noexcept;
  double stddev_freq_mhz() const noexcept;
  double mean_ips() const noexcept;

  /// Fraction of samples whose true power exceeds the given limit.
  double violation_rate(double power_limit_w) const noexcept;

 private:
  std::vector<TelemetrySample> samples_;
};

}  // namespace fedpower::sim
