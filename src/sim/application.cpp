#include "sim/application.hpp"

#include "util/assert.hpp"

namespace fedpower::sim {

double AppProfile::total_instructions() const noexcept {
  double total = 0.0;
  for (const auto& phase : phases) total += phase.instructions;
  return total;
}

AppProfile AppProfile::scaled(double factor) const {
  FEDPOWER_EXPECTS(factor > 0.0);
  AppProfile copy = *this;
  for (auto& phase : copy.phases) phase.instructions *= factor;
  return copy;
}

namespace {

template <typename Getter>
double weighted(const AppProfile& app, Getter get) noexcept {
  double acc = 0.0;
  double total = 0.0;
  for (const auto& phase : app.phases) {
    acc += get(phase) * phase.instructions;
    total += phase.instructions;
  }
  return total > 0.0 ? acc / total : 0.0;
}

}  // namespace

double AppProfile::weighted_base_cpi() const noexcept {
  return weighted(*this, [](const PhaseProfile& p) { return p.base_cpi; });
}

double AppProfile::weighted_llc_apki() const noexcept {
  return weighted(*this, [](const PhaseProfile& p) { return p.llc_apki; });
}

double AppProfile::weighted_miss_rate() const noexcept {
  return weighted(*this, [](const PhaseProfile& p) { return p.llc_miss_rate; });
}

double AppProfile::weighted_activity() const noexcept {
  return weighted(*this, [](const PhaseProfile& p) { return p.activity; });
}

void validate(const AppProfile& app) {
  FEDPOWER_EXPECTS(!app.name.empty());
  FEDPOWER_EXPECTS(!app.phases.empty());
  for (const auto& phase : app.phases) {
    FEDPOWER_EXPECTS(phase.instructions > 0.0);
    FEDPOWER_EXPECTS(phase.base_cpi > 0.0);
    FEDPOWER_EXPECTS(phase.llc_apki >= 0.0);
    FEDPOWER_EXPECTS(phase.llc_miss_rate >= 0.0 && phase.llc_miss_rate <= 1.0);
    FEDPOWER_EXPECTS(phase.activity >= 0.0 && phase.activity <= 1.0);
  }
}

}  // namespace fedpower::sim
