#include "sim/workload_extra.hpp"

#include "util/assert.hpp"

namespace fedpower::sim {

ScriptedWorkload::ScriptedWorkload(std::vector<AppProfile> apps,
                                   std::vector<std::size_t> script)
    : apps_(std::move(apps)), script_(std::move(script)) {
  FEDPOWER_EXPECTS(!apps_.empty());
  FEDPOWER_EXPECTS(!script_.empty());
  for (const auto& app : apps_) validate(app);
  for (const std::size_t index : script_)
    FEDPOWER_EXPECTS(index < apps_.size());
}

const AppProfile& ScriptedWorkload::next(util::Rng&) {
  const AppProfile& app = apps_[script_[position_]];
  position_ = (position_ + 1) % script_.size();
  return app;
}

WeightedWorkload::WeightedWorkload(std::vector<AppProfile> apps,
                                   std::vector<double> weights)
    : apps_(std::move(apps)), weights_(std::move(weights)) {
  FEDPOWER_EXPECTS(!apps_.empty());
  FEDPOWER_EXPECTS(weights_.size() == apps_.size());
  for (const auto& app : apps_) validate(app);
  double total = 0.0;
  for (const double w : weights_) {
    FEDPOWER_EXPECTS(w >= 0.0);
    total += w;
  }
  FEDPOWER_EXPECTS(total > 0.0);
}

const AppProfile& WeightedWorkload::next(util::Rng& rng) {
  return apps_[rng.categorical(weights_)];
}

}  // namespace fedpower::sim
