#include "sim/processor.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/state_io.hpp"

namespace fedpower::sim {

namespace {

// Executed when no workload is attached and no application is in flight:
// a WFI-style idle state — minimal switching activity and almost no
// instruction retirement (the core mostly sleeps between wakeups).
const PhaseProfile kIdlePhase{100.0, 0.0, 0.0, 0.03, 1e30};
const std::string kIdleName = "<idle>";

// Upper bound on phase/application boundaries handled inside one interval;
// purely a guard against degenerate (near-zero-length) workloads.
constexpr int kMaxSegmentsPerInterval = 100000;

}  // namespace

Processor::Processor(ProcessorConfig config, util::Rng rng)
    : config_(std::move(config)),
      rng_(rng),
      perf_model_(config_.perf),
      power_model_(config_.power) {
  FEDPOWER_EXPECTS(config_.sensor_noise_w >= 0.0);
  FEDPOWER_EXPECTS(config_.workload_jitter >= 0.0 &&
                   config_.workload_jitter < 1.0);
  FEDPOWER_EXPECTS(config_.dvfs_transition_us >= 0.0);
  if (config_.enable_thermal) thermal_.emplace(config_.thermal);
}

void Processor::set_workload(Workload* workload) {
  workload_ = workload;
  run_.reset();
}

void Processor::set_level(std::size_t level) {
  FEDPOWER_EXPECTS(level < config_.vf_table.size());
  // A stuck DVFS actuator acknowledges the request (a real driver returns
  // success from the sysfs write) but leaves the operating point alone.
  if (faults_.dvfs_stuck) return;
  level_ = level;
}

void Processor::inject_faults(const HardwareFaultConfig& faults) {
  FEDPOWER_EXPECTS(!faults.stuck_power_sensor || faults.stuck_power_w >= 0.0);
  faults_ = faults;
  if (!faults_.frozen_counters) frozen_.reset();
}

void Processor::apply_faults(TelemetrySample& sample) {
  // Applied after the honest sample is fully computed — including its
  // sensor-noise draw — so arming a fault never shifts the RNG stream.
  if (faults_.stuck_power_sensor) sample.power_w = faults_.stuck_power_w;
  if (faults_.frozen_counters) {
    if (!frozen_)
      frozen_ = FrozenCounters{sample.instructions, sample.cycles,
                               sample.ipc,          sample.miss_rate,
                               sample.mpki,         sample.ips};
    sample.instructions = frozen_->instructions;
    sample.cycles = frozen_->cycles;
    sample.ipc = frozen_->ipc;
    sample.miss_rate = frozen_->miss_rate;
    sample.mpki = frozen_->mpki;
    sample.ips = frozen_->ips;
  }
}

void Processor::reset_app() { run_.reset(); }

void Processor::set_memory_latency_scale(double scale) {
  FEDPOWER_EXPECTS(scale >= 1.0);
  mem_latency_scale_ = scale;
}

const std::string& Processor::current_app_name() const noexcept {
  return run_ ? run_->app.name : kIdleName;
}

double Processor::temperature_c() const noexcept {
  return thermal_ ? thermal_->temperature_c() : config_.thermal.ambient_c;
}

void Processor::start_next_app() {
  if (workload_ == nullptr) {
    run_.reset();
    return;
  }
  AppRun next;
  next.app = workload_->next(rng_);
  next.start_time_s = time_s_;
  run_ = std::move(next);
}

PhaseProfile Processor::jittered(const PhaseProfile& phase) const {
  PhaseProfile p = phase;
  p.llc_miss_rate = std::clamp(phase.llc_miss_rate * jitter_miss_, 0.0, 1.0);
  p.activity = std::clamp(phase.activity * jitter_activity_, 0.0, 1.0);
  return p;
}

TelemetrySample Processor::run_interval(double dt_s) {
  FEDPOWER_EXPECTS(dt_s > 0.0);

  // Fresh workload-behaviour jitter for this interval.
  if (config_.workload_jitter > 0.0) {
    jitter_miss_ =
        std::max(0.1, rng_.normal(1.0, config_.workload_jitter));
    jitter_activity_ =
        std::max(0.1, rng_.normal(1.0, config_.workload_jitter));
  }

  const VfLevel& vf = config_.vf_table.level(level_);

  double remaining = dt_s;
  double energy = 0.0;
  double instructions = 0.0;
  double accesses = 0.0;
  double misses = 0.0;

  // V/f transition penalty: the core halts briefly while the PLL relocks;
  // only leakage is consumed.
  if (level_ != previous_level_ && config_.dvfs_transition_us > 0.0) {
    const double t_switch =
        std::min(remaining, config_.dvfs_transition_us * 1e-6);
    energy += power_model_.leakage(vf) * t_switch;
    remaining -= t_switch;
    previous_level_ = level_;
  }

  int segments = 0;
  while (remaining > 1e-12) {
    FEDPOWER_ASSERT(++segments < kMaxSegmentsPerInterval);
    if (!run_) {
      start_next_app();
      if (!run_) {
        // No workload: idle for the rest of the interval.
        const PhasePerf perf =
            perf_model_.evaluate(kIdlePhase, vf.freq_mhz, mem_latency_scale_);
        double power =
            power_model_.total(vf, kIdlePhase, perf.stall_fraction);
        if (thermal_)
          power += power_model_.leakage(vf) *
                   (thermal_->leakage_multiplier() - 1.0);
        energy += power * remaining;
        instructions += perf.ips * remaining;
        remaining = 0.0;
        break;
      }
    }

    const PhaseProfile& base_phase = run_->app.phases[run_->phase_index];
    const PhaseProfile phase = jittered(base_phase);
    const PhasePerf perf =
        perf_model_.evaluate(phase, vf.freq_mhz, mem_latency_scale_);

    const double phase_remaining_instr =
        base_phase.instructions - run_->phase_instructions_done;
    const double t_phase_end = phase_remaining_instr / perf.ips;
    const double t_seg = std::min(remaining, t_phase_end);

    double power = power_model_.total(vf, phase, perf.stall_fraction);
    if (thermal_)
      power +=
          power_model_.leakage(vf) * (thermal_->leakage_multiplier() - 1.0);

    const double seg_instr = perf.ips * t_seg;
    energy += power * t_seg;
    instructions += seg_instr;
    accesses += seg_instr * phase.llc_apki / 1000.0;
    misses += seg_instr * phase.llc_apki / 1000.0 * phase.llc_miss_rate;
    run_->instructions += seg_instr;
    run_->energy_j += power * t_seg;
    run_->phase_instructions_done += seg_instr;
    remaining -= t_seg;

    if (run_->phase_instructions_done >=
        base_phase.instructions * (1.0 - 1e-12)) {
      run_->phase_instructions_done = 0.0;
      ++run_->phase_index;
      if (run_->phase_index >= run_->app.phases.size()) {
        // Application complete: record it and pull the next one.
        const double end_time = time_s_ + (dt_s - remaining);
        AppExecution done;
        done.name = run_->app.name;
        done.start_time_s = run_->start_time_s;
        done.exec_time_s = end_time - run_->start_time_s;
        done.energy_j = run_->energy_j;
        done.instructions = run_->instructions;
        done.avg_power_w =
            done.exec_time_s > 0.0 ? done.energy_j / done.exec_time_s : 0.0;
        done.avg_ips = done.exec_time_s > 0.0
                           ? done.instructions / done.exec_time_s
                           : 0.0;
        completed_.push_back(std::move(done));
        run_.reset();
      }
    }
  }

  time_s_ += dt_s;

  const double true_power = energy / dt_s;
  if (thermal_) thermal_->step(true_power, dt_s);

  TelemetrySample sample;
  sample.time_s = time_s_;
  sample.level = level_;
  sample.freq_mhz = vf.freq_mhz;
  sample.voltage_v = vf.voltage_v;
  sample.true_power_w = true_power;
  sample.power_w = std::max(
      0.0, true_power + rng_.normal(0.0, config_.sensor_noise_w));
  sample.energy_j = energy;
  sample.instructions = instructions;
  sample.cycles = vf.freq_mhz * 1e6 * dt_s;
  sample.ipc = sample.cycles > 0.0 ? instructions / sample.cycles : 0.0;
  sample.miss_rate = accesses > 0.0 ? misses / accesses : 0.0;
  sample.mpki = instructions > 0.0 ? misses / instructions * 1000.0 : 0.0;
  sample.ips = instructions / dt_s;
  sample.temperature_c = temperature_c();
  sample.app_name = current_app_name();
  previous_level_ = level_;
  apply_faults(sample);
  return sample;
}

namespace {

constexpr ckpt::Tag kProcessorTag{'P', 'R', 'O', 'C'};

void save_phase(ckpt::Writer& out, const PhaseProfile& phase) {
  out.f64(phase.base_cpi);
  out.f64(phase.llc_apki);
  out.f64(phase.llc_miss_rate);
  out.f64(phase.activity);
  out.f64(phase.instructions);
}

PhaseProfile restore_phase(ckpt::Reader& in) {
  PhaseProfile phase;
  phase.base_cpi = in.f64();
  phase.llc_apki = in.f64();
  phase.llc_miss_rate = in.f64();
  phase.activity = in.f64();
  phase.instructions = in.f64();
  return phase;
}

}  // namespace

void Processor::save_state(ckpt::Writer& out) const {
  write_tag(out, kProcessorTag);
  ckpt::save_rng(out, rng_);
  out.u8(thermal_.has_value() ? 1 : 0);
  if (thermal_) out.f64(thermal_->temperature_c());
  // In-flight application run, profile stored verbatim: the profile was
  // drawn (and possibly scaled) by the workload at start time, so the
  // resumed run must finish the exact same instance.
  out.u8(run_.has_value() ? 1 : 0);
  if (run_) {
    out.str(run_->app.name);
    out.u64(run_->app.phases.size());
    for (const PhaseProfile& phase : run_->app.phases) save_phase(out, phase);
    out.u64(run_->phase_index);
    out.f64(run_->phase_instructions_done);
    out.f64(run_->start_time_s);
    out.f64(run_->instructions);
    out.f64(run_->energy_j);
  }
  out.u64(completed_.size());
  for (const AppExecution& exec : completed_) {
    out.str(exec.name);
    out.f64(exec.start_time_s);
    out.f64(exec.exec_time_s);
    out.f64(exec.energy_j);
    out.f64(exec.instructions);
    out.f64(exec.avg_power_w);
    out.f64(exec.avg_ips);
  }
  out.u64(level_);
  out.u64(previous_level_);
  out.f64(time_s_);
  out.f64(jitter_miss_);
  out.f64(jitter_activity_);
  out.f64(mem_latency_scale_);
  // Fault state is appended only when faults are armed, keeping clean-run
  // snapshots byte-identical to the fault-free format. Faults are config,
  // not state — the restoring processor must already be armed the same way.
  if (faults_.any()) {
    out.u8(frozen_.has_value() ? 1 : 0);
    if (frozen_) {
      out.f64(frozen_->instructions);
      out.f64(frozen_->cycles);
      out.f64(frozen_->ipc);
      out.f64(frozen_->miss_rate);
      out.f64(frozen_->mpki);
      out.f64(frozen_->ips);
    }
  }
}

void Processor::restore_state(ckpt::Reader& in) {
  expect_tag(in, kProcessorTag, "processor");
  ckpt::restore_rng(in, rng_);
  const bool had_thermal = in.u8() != 0;
  if (had_thermal != thermal_.has_value())
    throw ckpt::StateMismatchError(
        "processor snapshot thermal-model flag does not match this config");
  if (thermal_) thermal_->set_temperature_c(in.f64());
  run_.reset();
  if (in.u8() != 0) {
    AppRun run;
    run.app.name = in.str();
    const std::uint64_t phase_count = in.u64();
    run.app.phases.reserve(phase_count);
    for (std::uint64_t i = 0; i < phase_count; ++i)
      run.app.phases.push_back(restore_phase(in));
    run.phase_index = in.u64();
    run.phase_instructions_done = in.f64();
    run.start_time_s = in.f64();
    run.instructions = in.f64();
    run.energy_j = in.f64();
    if (run.app.phases.empty() || run.phase_index >= run.app.phases.size())
      throw ckpt::StateMismatchError(
          "processor snapshot has an in-flight run with an out-of-range "
          "phase index");
    run_ = std::move(run);
  }
  const std::uint64_t completed_count = in.u64();
  completed_.clear();
  completed_.reserve(completed_count);
  for (std::uint64_t i = 0; i < completed_count; ++i) {
    AppExecution exec;
    exec.name = in.str();
    exec.start_time_s = in.f64();
    exec.exec_time_s = in.f64();
    exec.energy_j = in.f64();
    exec.instructions = in.f64();
    exec.avg_power_w = in.f64();
    exec.avg_ips = in.f64();
    completed_.push_back(std::move(exec));
  }
  level_ = in.u64();
  previous_level_ = in.u64();
  if (level_ >= config_.vf_table.size() ||
      previous_level_ >= config_.vf_table.size())
    throw ckpt::StateMismatchError(
        "processor snapshot V/f level is out of range for this table");
  time_s_ = in.f64();
  jitter_miss_ = in.f64();
  jitter_activity_ = in.f64();
  mem_latency_scale_ = in.f64();
  if (faults_.any()) {
    frozen_.reset();
    const std::uint8_t has_frozen = in.u8();
    if (has_frozen > 1)
      throw ckpt::StateMismatchError(
          "processor snapshot lacks the hardware-fault section this "
          "configuration expects");
    if (has_frozen == 1) {
      FrozenCounters frozen;
      frozen.instructions = in.f64();
      frozen.cycles = in.f64();
      frozen.ipc = in.f64();
      frozen.miss_rate = in.f64();
      frozen.mpki = in.f64();
      frozen.ips = in.f64();
      frozen_ = frozen;
    }
  }
}

}  // namespace fedpower::sim
