// Telemetry trace import/export. Traces written here load into any
// spreadsheet/plotting tool, and read_trace_csv round-trips them for
// offline analysis tooling built on the library.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/telemetry.hpp"

namespace fedpower::sim {

/// Column order of the CSV format (header row included on write).
/// time_s,level,freq_mhz,voltage_v,power_w,true_power_w,energy_j,
/// instructions,cycles,ipc,miss_rate,mpki,ips,temperature_c,app_name
void write_trace_csv(const TraceRecorder& trace, std::ostream& out);

/// Convenience overload writing to a file path; throws std::runtime_error
/// on I/O failure.
void write_trace_csv(const TraceRecorder& trace, const std::string& path);

/// Parses a trace produced by write_trace_csv. Throws
/// std::invalid_argument on malformed rows.
std::vector<TelemetrySample> read_trace_csv(std::istream& in);

}  // namespace fedpower::sim
