// Synthetic profiles of the twelve SPLASH-2 applications used in the paper's
// evaluation (§IV): fft, lu, raytrace, volrend, water-ns, water-sp, ocean,
// radix, fmm, radiosity, barnes, cholesky.
//
// No SPLASH-2 binaries run here; each profile encodes the published
// characterization of the program (Woo et al., ISCA'95) as phase parameters
// of the analytical simulator: radix and ocean are memory-bound (high LLC
// traffic, performance saturates with frequency), the water codes and lu are
// compute-bound (high ILP and switching activity, power grows ~linearly with
// frequency), and the rest fall in between, several with strongly phased
// behaviour. DESIGN.md §2 explains why this substitution preserves the
// paper's learning problem.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/application.hpp"

namespace fedpower::sim {

/// All twelve evaluation applications, in the paper's canonical order:
/// fft, lu, raytrace, volrend, water-ns, water-sp, ocean, radix, fmm,
/// radiosity, barnes, cholesky.
std::vector<AppProfile> splash2_suite();

/// One application by name; nullopt if the name is unknown.
std::optional<AppProfile> splash2_app(const std::string& name);

/// The canonical application order (names only).
std::vector<std::string> splash2_names();

}  // namespace fedpower::sim
