// Additional workload sequencers beyond the three the paper's protocol
// needs: a scripted (trace-driven) sequence for reproducible multi-app
// schedules and a weighted sampler for skewed app popularity.
#pragma once

#include <string>
#include <vector>

#include "sim/workload.hpp"

namespace fedpower::sim {

/// Plays a fixed sequence of applications (by index into the app set),
/// looping at the end — a deterministic "schedule trace".
class ScriptedWorkload final : public Workload {
 public:
  /// apps: the application set; script: indices into apps, executed in
  /// order. Both must be non-empty; indices must be in range.
  ScriptedWorkload(std::vector<AppProfile> apps,
                   std::vector<std::size_t> script);

  const AppProfile& next(util::Rng& rng) override;
  const std::vector<AppProfile>& apps() const noexcept override {
    return apps_;
  }

  std::size_t position() const noexcept { return position_; }
  const std::vector<std::size_t>& script() const noexcept { return script_; }

 private:
  std::vector<AppProfile> apps_;
  std::vector<std::size_t> script_;
  std::size_t position_ = 0;
};

/// Samples applications with configurable weights — real devices run a few
/// frequent workloads and occasionally something rare (paper §IV-A's
/// non-uniformity argument, made explicit).
class WeightedWorkload final : public Workload {
 public:
  /// weights must match apps in size, be non-negative, and sum > 0.
  WeightedWorkload(std::vector<AppProfile> apps, std::vector<double> weights);

  const AppProfile& next(util::Rng& rng) override;
  const std::vector<AppProfile>& apps() const noexcept override {
    return apps_;
  }

  const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  std::vector<AppProfile> apps_;
  std::vector<double> weights_;
};

}  // namespace fedpower::sim
