// Multi-core processor with a shared clock domain.
//
// The paper's evaluation platform is a Jetson Nano: four Cortex-A57 cores
// behind ONE clock signal (§IV). Its experiments run single-threaded
// applications, so the single-core Processor is the faithful model there —
// but a real deployment runs work on several cores at once, all forced to
// the same V/f level. MulticoreProcessor models exactly that: per-core
// workloads and counters, one shared operating point, rail-level power =
// sum of the cores.
//
// Calibration note: PowerModelParams::leakage_w_per_v is calibrated for
// the whole CPU rail in the single-core model; jetson_nano_4core() divides
// it across cores so that "one busy core + three idle cores" matches the
// single-core totals.
#pragma once

#include <memory>
#include <vector>

#include "sim/device.hpp"
#include "sim/processor.hpp"

namespace fedpower::sim {

struct MulticoreConfig {
  std::size_t cores = 4;
  /// Per-core model parameters (leakage is per core — see header note).
  ProcessorConfig core_config{};
  /// Rail-level power-sensor noise (per-core sensors are disabled).
  double sensor_noise_w = 0.008;
  /// Shared-DRAM contention: the effective memory latency every core sees
  /// grows as 1 + coeff * (total misses/s / peak misses/s). 0 disables it.
  double contention_coeff = 0.5;
  /// Miss throughput the memory system sustains without queueing.
  double peak_misses_per_s = 4e7;

  /// The paper's platform: 4 Cortex-A57 cores on the Jetson Nano V/f
  /// table, rail leakage split across cores.
  static MulticoreConfig jetson_nano_4core();
};

class MulticoreProcessor final : public CpuDevice {
 public:
  MulticoreProcessor(MulticoreConfig config, util::Rng rng);

  /// Assigns a workload to one core (nullptr leaves the core idle).
  /// Non-owning; must outlive the processor's use.
  void set_workload(std::size_t core, Workload* workload);

  void set_level(std::size_t level) override;
  std::size_t level() const override { return level_; }

  /// Runs all cores for dt seconds at the shared level and returns
  /// rail-level telemetry: power and energy are summed over cores; IPC is
  /// total instructions over total core cycles (cores x f x dt); cache
  /// statistics aggregate all cores' traffic.
  TelemetrySample run_interval(double dt_s) override;

  const VfTable& vf_table() const override;

  std::size_t core_count() const noexcept { return cores_.size(); }

  /// Telemetry of one core from the most recent interval.
  const TelemetrySample& core_sample(std::size_t core) const;

  /// Completed application runs of one core.
  const std::vector<AppExecution>& completed_runs(std::size_t core) const;

  double time_s() const noexcept { return time_s_; }

  /// DRAM latency multiplier currently applied to every core (>= 1);
  /// derived from the previous interval's total miss traffic.
  double contention_scale() const noexcept { return contention_scale_; }

 private:
  MulticoreConfig config_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Processor>> cores_;
  std::vector<TelemetrySample> core_samples_;
  std::size_t level_ = 0;
  double time_s_ = 0.0;
  double contention_scale_ = 1.0;
};

}  // namespace fedpower::sim
