#include "sim/vf_table.hpp"

#include <cmath>

namespace fedpower::sim {

VfTable::VfTable(std::vector<VfLevel> levels) : levels_(std::move(levels)) {
  FEDPOWER_EXPECTS(!levels_.empty());
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    FEDPOWER_EXPECTS(levels_[i].freq_mhz > 0.0);
    FEDPOWER_EXPECTS(levels_[i].voltage_v > 0.0);
    levels_[i].index = static_cast<int>(i);
    if (i > 0) FEDPOWER_EXPECTS(levels_[i].freq_mhz > levels_[i - 1].freq_mhz);
  }
}

VfTable VfTable::jetson_nano() {
  // Frequencies from the Jetson Nano cpufreq table; voltages follow the
  // near-linear DVS characteristic of the Cortex-A57 cluster.
  const double freqs[] = {102.0,  204.0,  307.2,  403.2,  518.4,
                          614.4,  710.4,  825.6,  921.6,  1036.8,
                          1132.8, 1224.0, 1326.0, 1428.0, 1479.0};
  constexpr double v_min = 0.80;
  constexpr double v_max = 1.10;
  const double f_lo = freqs[0];
  const double f_hi = freqs[14];
  std::vector<VfLevel> levels;
  levels.reserve(15);
  for (const double f : freqs) {
    const double v = v_min + (v_max - v_min) * (f - f_lo) / (f_hi - f_lo);
    levels.push_back(VfLevel{0, f, v});
  }
  return VfTable{std::move(levels)};
}

VfTable VfTable::linear(std::size_t k, double f_min_mhz, double f_max_mhz,
                        double v_min, double v_max) {
  FEDPOWER_EXPECTS(k >= 2);
  FEDPOWER_EXPECTS(f_min_mhz > 0.0 && f_min_mhz < f_max_mhz);
  FEDPOWER_EXPECTS(v_min > 0.0 && v_min <= v_max);
  std::vector<VfLevel> levels;
  levels.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(k - 1);
    levels.push_back(VfLevel{0, f_min_mhz + t * (f_max_mhz - f_min_mhz),
                             v_min + t * (v_max - v_min)});
  }
  return VfTable{std::move(levels)};
}

std::size_t VfTable::nearest_level(double freq_mhz) const noexcept {
  std::size_t best = 0;
  double best_dist = std::abs(levels_[0].freq_mhz - freq_mhz);
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    const double dist = std::abs(levels_[i].freq_mhz - freq_mhz);
    if (dist < best_dist) {
      best = i;
      best_dist = dist;
    }
  }
  return best;
}

}  // namespace fedpower::sim
