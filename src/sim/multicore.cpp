#include "sim/multicore.hpp"

#include <algorithm>

namespace fedpower::sim {

MulticoreConfig MulticoreConfig::jetson_nano_4core() {
  MulticoreConfig config;
  config.cores = 4;
  config.core_config = ProcessorConfig{};
  config.core_config.power.leakage_w_per_v /= 4.0;  // rail -> per core
  // Noise is applied once at the rail sensor, not per core.
  config.core_config.sensor_noise_w = 0.0;
  return config;
}

MulticoreProcessor::MulticoreProcessor(MulticoreConfig config, util::Rng rng)
    : config_(std::move(config)), rng_(rng) {
  FEDPOWER_EXPECTS(config_.cores >= 1);
  FEDPOWER_EXPECTS(config_.sensor_noise_w >= 0.0);
  // Per-core sensors stay noise-free; the rail sensor adds noise once.
  config_.core_config.sensor_noise_w = 0.0;
  cores_.reserve(config_.cores);
  for (std::size_t c = 0; c < config_.cores; ++c)
    cores_.push_back(
        std::make_unique<Processor>(config_.core_config, rng_.split()));
  core_samples_.resize(config_.cores);
}

void MulticoreProcessor::set_workload(std::size_t core, Workload* workload) {
  FEDPOWER_EXPECTS(core < cores_.size());
  cores_[core]->set_workload(workload);
}

void MulticoreProcessor::set_level(std::size_t level) {
  FEDPOWER_EXPECTS(level < vf_table().size());
  level_ = level;
  for (auto& core : cores_) core->set_level(level);
}

const VfTable& MulticoreProcessor::vf_table() const {
  return config_.core_config.vf_table;
}

const TelemetrySample& MulticoreProcessor::core_sample(
    std::size_t core) const {
  FEDPOWER_EXPECTS(core < core_samples_.size());
  return core_samples_[core];
}

const std::vector<AppExecution>& MulticoreProcessor::completed_runs(
    std::size_t core) const {
  FEDPOWER_EXPECTS(core < cores_.size());
  return cores_[core]->completed_runs();
}

TelemetrySample MulticoreProcessor::run_interval(double dt_s) {
  FEDPOWER_EXPECTS(dt_s > 0.0);

  TelemetrySample rail;
  double misses = 0.0;
  double accesses = 0.0;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    // Shared-DRAM queueing from the previous interval's traffic slows every
    // core's misses this interval (one-interval lag avoids a fixed point).
    cores_[c]->set_memory_latency_scale(contention_scale_);
    core_samples_[c] = cores_[c]->run_interval(dt_s);
    const TelemetrySample& s = core_samples_[c];
    rail.true_power_w += s.true_power_w;
    rail.energy_j += s.energy_j;
    rail.instructions += s.instructions;
    rail.cycles += s.cycles;
    // Reconstruct cache traffic from the per-core aggregates.
    const double core_misses = s.mpki / 1000.0 * s.instructions;
    misses += core_misses;
    if (s.miss_rate > 0.0) accesses += core_misses / s.miss_rate;
  }
  time_s_ += dt_s;

  if (config_.contention_coeff > 0.0) {
    const double misses_per_s = misses / dt_s;
    contention_scale_ =
        1.0 + config_.contention_coeff *
                  (misses_per_s / config_.peak_misses_per_s);
  }

  const VfLevel& vf = vf_table().level(level_);
  rail.time_s = time_s_;
  rail.level = level_;
  rail.freq_mhz = vf.freq_mhz;
  rail.voltage_v = vf.voltage_v;
  rail.power_w = std::max(
      0.0, rail.true_power_w + rng_.normal(0.0, config_.sensor_noise_w));
  rail.ipc = rail.cycles > 0.0 ? rail.instructions / rail.cycles : 0.0;
  rail.miss_rate = accesses > 0.0 ? misses / accesses : 0.0;
  rail.mpki =
      rail.instructions > 0.0 ? misses / rail.instructions * 1000.0 : 0.0;
  rail.ips = rail.instructions / dt_s;
  rail.temperature_c = cores_.front()->temperature_c();
  rail.app_name = cores_.front()->current_app_name();
  return rail;
}

}  // namespace fedpower::sim
