// Workload sequencing: decides which application a device executes next.
// The paper's training setting assigns a small, device-specific set of
// applications to each device (Table II) and runs them back to back in an
// order unknown at design time.
#pragma once

#include <memory>
#include <vector>

#include "sim/application.hpp"
#include "util/rng.hpp"

namespace fedpower::sim {

class Workload {
 public:
  virtual ~Workload() = default;

  /// Profile of the next application to run. The reference stays valid until
  /// the next call to next() on the same workload.
  virtual const AppProfile& next(util::Rng& rng) = 0;

  /// Applications this workload can produce (for reporting).
  virtual const std::vector<AppProfile>& apps() const noexcept = 0;
};

/// Runs the given applications round-robin.
class RotationWorkload final : public Workload {
 public:
  explicit RotationWorkload(std::vector<AppProfile> apps);
  const AppProfile& next(util::Rng& rng) override;
  const std::vector<AppProfile>& apps() const noexcept override {
    return apps_;
  }

 private:
  std::vector<AppProfile> apps_;
  std::size_t index_ = 0;
};

/// Samples the next application uniformly at random from the set.
class RandomWorkload final : public Workload {
 public:
  explicit RandomWorkload(std::vector<AppProfile> apps);
  const AppProfile& next(util::Rng& rng) override;
  const std::vector<AppProfile>& apps() const noexcept override {
    return apps_;
  }

 private:
  std::vector<AppProfile> apps_;
};

/// Repeats a single application forever (used during policy evaluation).
class SingleAppWorkload final : public Workload {
 public:
  explicit SingleAppWorkload(AppProfile app);
  const AppProfile& next(util::Rng& rng) override;
  const std::vector<AppProfile>& apps() const noexcept override {
    return apps_;
  }

 private:
  std::vector<AppProfile> apps_;  // exactly one element
};

}  // namespace fedpower::sim
