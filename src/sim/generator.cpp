#include "sim/generator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fedpower::sim {

AppProfile generate_app(const std::string& name,
                        const AppGeneratorParams& params, util::Rng& rng) {
  FEDPOWER_EXPECTS(params.min_phases >= 1);
  FEDPOWER_EXPECTS(params.max_phases >= params.min_phases);
  FEDPOWER_EXPECTS(params.base_cpi_lo > 0.0 &&
                   params.base_cpi_lo <= params.base_cpi_hi);
  FEDPOWER_EXPECTS(params.apki_lo >= 0.0 && params.apki_lo <= params.apki_hi);
  FEDPOWER_EXPECTS(params.miss_rate_lo >= 0.0 &&
                   params.miss_rate_hi <= 1.0 &&
                   params.miss_rate_lo <= params.miss_rate_hi);
  FEDPOWER_EXPECTS(params.activity_lo > 0.0 &&
                   params.activity_hi <= 1.0 &&
                   params.activity_lo <= params.activity_hi);
  FEDPOWER_EXPECTS(params.phase_instructions_lo > 0.0 &&
                   params.phase_instructions_lo <=
                       params.phase_instructions_hi);
  FEDPOWER_EXPECTS(params.memory_activity_coupling >= 0.0 &&
                   params.memory_activity_coupling <= 1.0);

  const std::size_t phase_count = static_cast<std::size_t>(rng.uniform_int(
      static_cast<int>(params.min_phases),
      static_cast<int>(params.max_phases)));

  AppProfile app;
  app.name = name;
  app.phases.reserve(phase_count);
  for (std::size_t p = 0; p < phase_count; ++p) {
    PhaseProfile phase;
    phase.base_cpi = rng.uniform(params.base_cpi_lo, params.base_cpi_hi);
    phase.llc_apki = rng.uniform(params.apki_lo, params.apki_hi);
    phase.llc_miss_rate =
        rng.uniform(params.miss_rate_lo, params.miss_rate_hi);
    // Memory-heavy phases keep fewer functional units switching: blend an
    // independent draw with a traffic-anticorrelated component.
    const double traffic_norm =
        params.apki_hi > params.apki_lo
            ? (phase.llc_apki - params.apki_lo) /
                  (params.apki_hi - params.apki_lo)
            : 0.0;
    const double coupled = params.activity_hi -
                           traffic_norm *
                               (params.activity_hi - params.activity_lo);
    const double independent =
        rng.uniform(params.activity_lo, params.activity_hi);
    phase.activity = std::clamp(
        params.memory_activity_coupling * coupled +
            (1.0 - params.memory_activity_coupling) * independent,
        params.activity_lo, params.activity_hi);
    phase.instructions = rng.uniform(params.phase_instructions_lo,
                                     params.phase_instructions_hi);
    app.phases.push_back(phase);
  }
  validate(app);
  return app;
}

std::vector<AppProfile> generate_suite(std::size_t count,
                                       const std::string& prefix,
                                       const AppGeneratorParams& params,
                                       util::Rng& rng) {
  std::vector<AppProfile> suite;
  suite.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    suite.push_back(
        generate_app(prefix + "-" + std::to_string(i), params, rng));
  return suite;
}

}  // namespace fedpower::sim
