// Voltage/frequency operating points of the simulated processor.
//
// The default table reproduces the 15 CPU frequency levels of the NVIDIA
// Jetson Nano (Cortex-A57 cluster, 102 MHz .. 1479 MHz), the platform used
// in the paper's evaluation (§IV). Voltages follow the usual near-linear
// DVS curve between 0.80 V and 1.10 V.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace fedpower::sim {

struct VfLevel {
  int index = 0;          ///< position in the table, 0 = slowest
  double freq_mhz = 0.0;  ///< core clock in MHz
  double voltage_v = 0.0; ///< supply voltage applied at this frequency
};

class VfTable {
 public:
  /// Builds a table from (already sorted, strictly increasing) levels.
  explicit VfTable(std::vector<VfLevel> levels);

  /// The Jetson Nano CPU table used throughout the paper's evaluation.
  [[nodiscard]] static VfTable jetson_nano();

  /// Synthetic table with k equally spaced levels (for tests/ablations).
  [[nodiscard]] static VfTable linear(std::size_t k, double f_min_mhz,
                                      double f_max_mhz, double v_min,
                                      double v_max);

  [[nodiscard]] std::size_t size() const noexcept { return levels_.size(); }

  [[nodiscard]] const VfLevel& level(std::size_t index) const {
    FEDPOWER_EXPECTS(index < levels_.size());
    return levels_[index];
  }

  [[nodiscard]] const VfLevel& min_level() const noexcept { return levels_.front(); }
  [[nodiscard]] const VfLevel& max_level() const noexcept { return levels_.back(); }

  [[nodiscard]] double f_max_mhz() const noexcept { return levels_.back().freq_mhz; }
  [[nodiscard]] double f_min_mhz() const noexcept { return levels_.front().freq_mhz; }

  /// Index of the level whose frequency is closest to the given value.
  [[nodiscard]] std::size_t nearest_level(double freq_mhz) const noexcept;

  [[nodiscard]] const std::vector<VfLevel>& levels() const noexcept { return levels_; }

 private:
  std::vector<VfLevel> levels_;
};

}  // namespace fedpower::sim
