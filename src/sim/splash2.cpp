#include "sim/splash2.hpp"

namespace fedpower::sim {

// Phase tuples are {base_cpi, llc_apki, llc_miss_rate, activity,
// instructions}. Instruction budgets put each program's execution time in
// the 15..40 s range at its power-constrained optimal frequency, matching
// the order of magnitude of the paper's Table III (24..30 s averages).
std::vector<AppProfile> splash2_suite() {
  std::vector<AppProfile> suite;

  // fft: alternating compute (butterfly) and memory (transpose) phases.
  suite.push_back(AppProfile{
      "fft",
      {
          PhaseProfile{0.75, 22.0, 0.30, 0.72, 8.0e9},
          PhaseProfile{0.85, 55.0, 0.50, 0.55, 6.0e9},
          PhaseProfile{0.75, 22.0, 0.30, 0.72, 8.0e9},
          PhaseProfile{0.90, 60.0, 0.55, 0.50, 5.0e9},
      }});

  // lu: blocked dense factorization — compute-bound, cache-friendly.
  suite.push_back(AppProfile{
      "lu",
      {
          PhaseProfile{0.62, 14.0, 0.22, 0.86, 1.4e10},
          PhaseProfile{0.68, 20.0, 0.28, 0.82, 1.2e10},
      }});

  // raytrace: irregular control flow, pointer chasing, moderate misses.
  suite.push_back(AppProfile{
      "raytrace",
      {
          PhaseProfile{0.92, 34.0, 0.32, 0.60, 9.0e9},
          PhaseProfile{0.88, 40.0, 0.38, 0.58, 8.0e9},
          PhaseProfile{0.95, 30.0, 0.28, 0.62, 7.0e9},
      }});

  // volrend: volume rendering — mixed, mild memory pressure.
  suite.push_back(AppProfile{
      "volrend",
      {
          PhaseProfile{0.84, 26.0, 0.30, 0.64, 1.0e10},
          PhaseProfile{0.88, 32.0, 0.34, 0.60, 9.0e9},
      }});

  // water-nsquared: O(n^2) molecular dynamics — strongly compute-bound.
  suite.push_back(AppProfile{
      "water-ns",
      {
          PhaseProfile{0.70, 11.0, 0.20, 0.82, 1.5e10},
          PhaseProfile{0.66, 13.0, 0.22, 0.84, 1.3e10},
      }});

  // water-spatial: cell-list MD — compute-bound, slightly more traffic.
  suite.push_back(AppProfile{
      "water-sp",
      {
          PhaseProfile{0.72, 12.0, 0.18, 0.80, 1.4e10},
          PhaseProfile{0.70, 16.0, 0.24, 0.78, 1.2e10},
      }});

  // ocean: stencil sweeps over large grids — memory-bound.
  suite.push_back(AppProfile{
      "ocean",
      {
          PhaseProfile{0.95, 68.0, 0.52, 0.50, 7.0e9},
          PhaseProfile{1.00, 75.0, 0.55, 0.48, 6.0e9},
          PhaseProfile{0.90, 60.0, 0.48, 0.52, 6.0e9},
      }});

  // radix: streaming integer sort — the most memory-bound program.
  suite.push_back(AppProfile{
      "radix",
      {
          PhaseProfile{0.85, 62.0, 0.58, 0.55, 7.0e9},
          PhaseProfile{0.88, 70.0, 0.60, 0.52, 6.0e9},
      }});

  // fmm: fast multipole — compute-heavy with a tree-traversal phase.
  suite.push_back(AppProfile{
      "fmm",
      {
          PhaseProfile{0.68, 18.0, 0.26, 0.78, 1.2e10},
          PhaseProfile{0.80, 34.0, 0.36, 0.64, 6.0e9},
          PhaseProfile{0.70, 20.0, 0.28, 0.76, 9.0e9},
      }});

  // radiosity: irregular task-parallel light transport — mixed.
  suite.push_back(AppProfile{
      "radiosity",
      {
          PhaseProfile{0.78, 24.0, 0.30, 0.70, 1.0e10},
          PhaseProfile{0.82, 30.0, 0.34, 0.66, 8.0e9},
      }});

  // barnes: Barnes-Hut n-body — tree build (memory) + force calc (compute).
  suite.push_back(AppProfile{
      "barnes",
      {
          PhaseProfile{0.95, 48.0, 0.44, 0.56, 5.0e9},
          PhaseProfile{0.72, 20.0, 0.26, 0.76, 1.1e10},
          PhaseProfile{0.95, 48.0, 0.44, 0.56, 4.0e9},
      }});

  // cholesky: sparse factorization — mixed, phase-dependent density.
  suite.push_back(AppProfile{
      "cholesky",
      {
          PhaseProfile{0.80, 36.0, 0.40, 0.62, 7.0e9},
          PhaseProfile{0.72, 24.0, 0.30, 0.72, 9.0e9},
      }});

  for (const auto& app : suite) validate(app);
  return suite;
}

std::optional<AppProfile> splash2_app(const std::string& name) {
  for (auto& app : splash2_suite())
    if (app.name == name) return app;
  return std::nullopt;
}

std::vector<std::string> splash2_names() {
  std::vector<std::string> names;
  for (const auto& app : splash2_suite()) names.push_back(app.name);
  return names;
}

}  // namespace fedpower::sim
