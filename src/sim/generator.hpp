// Synthetic application generator.
//
// The SPLASH-2 profiles are fixed points in workload space; the generator
// samples new applications from the same space so the learned policies can
// be evaluated on *never-seen* programs (the generalization claim behind
// using neural networks, paper §I) and so tests can sweep far more
// workload diversity than twelve profiles offer.
#pragma once

#include <string>
#include <vector>

#include "sim/application.hpp"
#include "util/rng.hpp"

namespace fedpower::sim {

struct AppGeneratorParams {
  std::size_t min_phases = 2;
  std::size_t max_phases = 4;
  double base_cpi_lo = 0.6;
  double base_cpi_hi = 1.0;
  double apki_lo = 10.0;
  double apki_hi = 75.0;
  double miss_rate_lo = 0.15;
  double miss_rate_hi = 0.6;
  double activity_lo = 0.45;
  double activity_hi = 0.9;
  double phase_instructions_lo = 4e9;
  double phase_instructions_hi = 1.2e10;
  /// Strength of the (negative) memory-traffic <-> activity correlation in
  /// [0, 1]: real memory-bound code keeps fewer functional units busy.
  double memory_activity_coupling = 0.6;
};

/// One random application; validate()-clean by construction.
AppProfile generate_app(const std::string& name,
                        const AppGeneratorParams& params, util::Rng& rng);

/// A suite of count random applications named <prefix>-0 .. <prefix>-N.
std::vector<AppProfile> generate_suite(std::size_t count,
                                       const std::string& prefix,
                                       const AppGeneratorParams& params,
                                       util::Rng& rng);

}  // namespace fedpower::sim
