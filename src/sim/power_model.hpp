// Analytical power model: dynamic CV²f power plus voltage-proportional
// leakage. During memory-stall cycles the core clock-gates most switching
// logic, so the effective activity blends the phase's compute activity with
// a small stall-time activity weighted by the stall fraction. Calibrated so
// the Jetson Nano V/f range spans ~0.15 W (idle-ish, lowest level) to
// ~1.3 W (compute-bound at 1479 MHz) around the paper's 0.6 W constraint.
#pragma once

#include "sim/perf_model.hpp"
#include "sim/vf_table.hpp"

namespace fedpower::sim {

struct PowerModelParams {
  double c_eff_nf = 0.72;        ///< effective switched capacitance [nF]
  double leakage_w_per_v = 0.136;///< static power coefficient [W/V]
  double stall_activity = 0.08;  ///< switching activity during stall cycles
  /// Per-device process-variation multiplier on both power components;
  /// 1.0 = nominal silicon.
  double variation = 1.0;
};

class PowerModel {
 public:
  explicit PowerModel(PowerModelParams params = {});

  /// Total power for a phase running at the given operating point, with the
  /// stall fraction taken from the performance model.
  [[nodiscard]] double total(const VfLevel& level, const PhaseProfile& phase,
                             double stall_fraction) const;

  /// Dynamic component only.
  [[nodiscard]] double dynamic(const VfLevel& level,
                               const PhaseProfile& phase,
                               double stall_fraction) const;

  /// Static (leakage) component only.
  [[nodiscard]] double leakage(const VfLevel& level) const;

  [[nodiscard]] const PowerModelParams& params() const noexcept {
    return params_;
  }

 private:
  PowerModelParams params_;
};

}  // namespace fedpower::sim
