// Classic (non-learning) frequency governors, mirroring the cpufreq policies
// shipped by Linux. They serve as reference points in the examples and as
// sanity baselines: the paper's motivation (§I) is precisely that these
// application-agnostic policies leave power efficiency on the table.
#pragma once

#include <cstddef>

#include "sim/telemetry.hpp"
#include "sim/vf_table.hpp"

namespace fedpower::sim {

class Governor {
 public:
  virtual ~Governor() = default;

  /// Chooses the V/f level for the next interval given the telemetry of the
  /// previous one.
  virtual std::size_t select_level(const TelemetrySample& sample,
                                   const VfTable& table) = 0;

  virtual void reset() {}
};

/// Always the highest level.
class PerformanceGovernor final : public Governor {
 public:
  std::size_t select_level(const TelemetrySample&,
                           const VfTable& table) override {
    return table.size() - 1;
  }
};

/// Always the lowest level.
class PowersaveGovernor final : public Governor {
 public:
  std::size_t select_level(const TelemetrySample&, const VfTable&) override {
    return 0;
  }
};

/// A fixed, user-chosen level.
class UserspaceGovernor final : public Governor {
 public:
  explicit UserspaceGovernor(std::size_t level) : level_(level) {}
  std::size_t select_level(const TelemetrySample&,
                           const VfTable& table) override {
    return level_ < table.size() ? level_ : table.size() - 1;
  }

 private:
  std::size_t level_;
};

/// Linux-ondemand-like: tracks a running estimate of the achievable IPC and
/// raises the frequency when the observed IPC is close to it (high load),
/// lowering it otherwise. On a fully loaded core this converges to f_max —
/// the real ondemand behaves the same, which is exactly why it violates
/// power budgets on compute-bound workloads.
class OndemandGovernor final : public Governor {
 public:
  explicit OndemandGovernor(double up_threshold = 0.8,
                            double down_threshold = 0.4);
  std::size_t select_level(const TelemetrySample& sample,
                           const VfTable& table) override;
  void reset() override;

 private:
  double up_threshold_;
  double down_threshold_;
  double ipc_reference_ = 0.0;
  std::size_t level_ = 0;
};

/// Linux-conservative-like: moves one level at a time based on the same
/// load estimate as ondemand, avoiding ondemand's jump-to-max behaviour.
/// Gentler power transients, slower response.
class ConservativeGovernor final : public Governor {
 public:
  explicit ConservativeGovernor(double up_threshold = 0.8,
                                double down_threshold = 0.4);
  std::size_t select_level(const TelemetrySample& sample,
                           const VfTable& table) override;
  void reset() override;

 private:
  double up_threshold_;
  double down_threshold_;
  double ipc_reference_ = 0.0;
  std::size_t level_ = 0;
};

/// Reactive power capping: steps the frequency down when measured power
/// exceeds the limit and up when there is headroom. A reasonable hand-tuned
/// controller — but purely reactive, so it oscillates around phase changes
/// where the learned policies act proactively.
class PowerCapGovernor final : public Governor {
 public:
  PowerCapGovernor(double power_limit_w, double headroom_w = 0.05);
  std::size_t select_level(const TelemetrySample& sample,
                           const VfTable& table) override;
  void reset() override;

 private:
  double power_limit_w_;
  double headroom_w_;
  std::size_t level_ = 0;
  bool initialized_ = false;
};

}  // namespace fedpower::sim
