#include "sim/thermal.hpp"

#include <cmath>

namespace fedpower::sim {

ThermalModel::ThermalModel(ThermalParams params)
    : params_(params), temperature_c_(params.ambient_c) {
  FEDPOWER_EXPECTS(params_.r_thermal_k_per_w > 0.0);
  FEDPOWER_EXPECTS(params_.c_thermal_j_per_k > 0.0);
  FEDPOWER_EXPECTS(params_.leakage_temp_coeff >= 0.0);
}

void ThermalModel::step(double power_w, double dt_s) {
  FEDPOWER_EXPECTS(power_w >= 0.0);
  FEDPOWER_EXPECTS(dt_s >= 0.0);
  // C dT/dt = P - (T - T_amb)/R has the exact solution
  // T(t) = T_ss + (T0 - T_ss) * exp(-t / (R*C)).
  const double t_ss = steady_state_c(power_w);
  const double tau = params_.r_thermal_k_per_w * params_.c_thermal_j_per_k;
  temperature_c_ = t_ss + (temperature_c_ - t_ss) * std::exp(-dt_s / tau);
}

double ThermalModel::steady_state_c(double power_w) const noexcept {
  return params_.ambient_c + power_w * params_.r_thermal_k_per_w;
}

double ThermalModel::leakage_multiplier() const noexcept {
  const double delta = temperature_c_ - params_.ambient_c;
  return 1.0 + params_.leakage_temp_coeff * (delta > 0.0 ? delta : 0.0);
}

}  // namespace fedpower::sim
