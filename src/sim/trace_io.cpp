#include "sim/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace fedpower::sim {

namespace {

constexpr const char* kHeader =
    "time_s,level,freq_mhz,voltage_v,power_w,true_power_w,energy_j,"
    "instructions,cycles,ipc,miss_rate,mpki,ips,temperature_c,app_name";

std::vector<std::string> split_row(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  // A trailing empty cell ("a,b,") is not produced by our writer, so plain
  // getline splitting suffices.
  return cells;
}

double parse_double(const std::string& cell) {
  std::size_t used = 0;
  const double value = std::stod(cell, &used);
  if (used != cell.size())
    throw std::invalid_argument("trace csv: bad numeric cell '" + cell + "'");
  return value;
}

}  // namespace

void write_trace_csv(const TraceRecorder& trace, std::ostream& out) {
  out << kHeader << '\n';
  for (const TelemetrySample& s : trace.samples()) {
    out << util::CsvWriter::format(s.time_s) << ',' << s.level << ','
        << util::CsvWriter::format(s.freq_mhz) << ','
        << util::CsvWriter::format(s.voltage_v) << ','
        << util::CsvWriter::format(s.power_w) << ','
        << util::CsvWriter::format(s.true_power_w) << ','
        << util::CsvWriter::format(s.energy_j) << ','
        << util::CsvWriter::format(s.instructions) << ','
        << util::CsvWriter::format(s.cycles) << ','
        << util::CsvWriter::format(s.ipc) << ','
        << util::CsvWriter::format(s.miss_rate) << ','
        << util::CsvWriter::format(s.mpki) << ','
        << util::CsvWriter::format(s.ips) << ','
        << util::CsvWriter::format(s.temperature_c) << ',' << s.app_name
        << '\n';
  }
}

void write_trace_csv(const TraceRecorder& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace csv: cannot open " + path);
  write_trace_csv(trace, out);
  if (!out) throw std::runtime_error("trace csv: write failed for " + path);
}

std::vector<TelemetrySample> read_trace_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader)
    throw std::invalid_argument("trace csv: missing or unknown header");
  std::vector<TelemetrySample> samples;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = split_row(line);
    if (cells.size() != 15)
      throw std::invalid_argument("trace csv: expected 15 cells, got " +
                                  std::to_string(cells.size()));
    TelemetrySample s;
    s.time_s = parse_double(cells[0]);
    s.level = static_cast<std::size_t>(parse_double(cells[1]));
    s.freq_mhz = parse_double(cells[2]);
    s.voltage_v = parse_double(cells[3]);
    s.power_w = parse_double(cells[4]);
    s.true_power_w = parse_double(cells[5]);
    s.energy_j = parse_double(cells[6]);
    s.instructions = parse_double(cells[7]);
    s.cycles = parse_double(cells[8]);
    s.ipc = parse_double(cells[9]);
    s.miss_rate = parse_double(cells[10]);
    s.mpki = parse_double(cells[11]);
    s.ips = parse_double(cells[12]);
    s.temperature_c = parse_double(cells[13]);
    s.app_name = cells[14];
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace fedpower::sim
