// Application profiles: a named sequence of execution phases. The simulator
// executes phases in order; applications with more than one phase expose
// time-varying behaviour to the power controller (compute bursts followed by
// memory-bound sweeps, etc.), as real SPLASH-2 programs do.
#pragma once

#include <string>
#include <vector>

#include "sim/perf_model.hpp"

namespace fedpower::sim {

struct AppProfile {
  std::string name;
  std::vector<PhaseProfile> phases;

  /// Total dynamic instruction count over all phases.
  double total_instructions() const noexcept;

  /// Scales every phase's instruction count by the given factor (used to
  /// shorten runs in tests).
  AppProfile scaled(double factor) const;

  /// Instruction-weighted mean of a phase attribute; used by tests and by
  /// workload characterization reports.
  double weighted_base_cpi() const noexcept;
  double weighted_llc_apki() const noexcept;
  double weighted_miss_rate() const noexcept;
  double weighted_activity() const noexcept;
};

/// Validates invariants (non-empty phases, positive instruction counts,
/// rates within [0,1]); aborts on violation.
void validate(const AppProfile& app);

}  // namespace fedpower::sim
