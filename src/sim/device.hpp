// Abstraction over a DVFS-controllable platform. The power controller only
// needs three capabilities — select a V/f level, execute one control
// interval, and know the V/f table — so both the single-core Processor
// (the paper's effective setting: single-threaded apps) and the
// MulticoreProcessor (the Jetson Nano's real 4-core shared-clock cluster)
// implement this interface.
#pragma once

#include <cstddef>

#include "sim/telemetry.hpp"
#include "sim/vf_table.hpp"

namespace fedpower::sim {

class CpuDevice {
 public:
  virtual ~CpuDevice() = default;

  /// Selects the V/f level for subsequent execution.
  virtual void set_level(std::size_t level) = 0;
  virtual std::size_t level() const = 0;

  /// Advances simulated time by dt seconds and returns aggregated
  /// telemetry for the interval.
  virtual TelemetrySample run_interval(double dt_s) = 0;

  virtual const VfTable& vf_table() const = 0;
};

}  // namespace fedpower::sim
