#include "sim/power_model.hpp"

namespace fedpower::sim {

PowerModel::PowerModel(PowerModelParams params) : params_(params) {
  FEDPOWER_EXPECTS(params_.c_eff_nf > 0.0);
  FEDPOWER_EXPECTS(params_.leakage_w_per_v >= 0.0);
  FEDPOWER_EXPECTS(params_.stall_activity >= 0.0 &&
                   params_.stall_activity <= 1.0);
  FEDPOWER_EXPECTS(params_.variation > 0.0);
}

double PowerModel::dynamic(const VfLevel& level, const PhaseProfile& phase,
                           double stall_fraction) const {
  FEDPOWER_EXPECTS(stall_fraction >= 0.0 && stall_fraction <= 1.0);
  const double activity =
      phase.activity * (1.0 - stall_fraction) +
      params_.stall_activity * stall_fraction;
  const double c_eff = params_.c_eff_nf * 1e-9;
  const double f_hz = level.freq_mhz * 1e6;
  return params_.variation * c_eff * level.voltage_v * level.voltage_v *
         f_hz * activity;
}

double PowerModel::leakage(const VfLevel& level) const {
  return params_.variation * params_.leakage_w_per_v * level.voltage_v;
}

double PowerModel::total(const VfLevel& level, const PhaseProfile& phase,
                         double stall_fraction) const {
  return dynamic(level, phase, stall_fraction) + leakage(level);
}

}  // namespace fedpower::sim
