// The simulated edge processor: executes a workload of phased applications
// at a selectable V/f operating point and produces per-interval telemetry
// (performance counters and a noisy power reading) — the environment the
// RL power controllers interact with.
//
// Execution inside a control interval is computed in closed form from the
// phase parameters (DESIGN.md §5.2): the interval is split at phase and
// application boundaries; within each segment, instruction throughput and
// power are constant, so time, energy and counter increments follow
// analytically. A 100-round federated experiment therefore simulates in
// milliseconds.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "sim/device.hpp"
#include "sim/perf_model.hpp"
#include "sim/power_model.hpp"
#include "sim/telemetry.hpp"
#include "sim/thermal.hpp"
#include "sim/vf_table.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace fedpower::sim {

struct ProcessorConfig {
  VfTable vf_table = VfTable::jetson_nano();
  PerfModelParams perf{};
  PowerModelParams power{};
  /// Standard deviation of the power sensor's additive Gaussian noise [W].
  double sensor_noise_w = 0.008;
  /// Relative per-interval jitter on phase miss rate and activity; models
  /// input-dependent behaviour of real applications.
  double workload_jitter = 0.04;
  /// Time lost per V/f transition [us]; modern PMICs switch in microseconds
  /// (paper §I footnote 1), so the default is a realistic small value.
  double dvfs_transition_us = 50.0;
  /// Enables the RC thermal model and temperature-dependent leakage.
  bool enable_thermal = false;
  ThermalParams thermal{};
};

/// Hardware-level faults a degraded device can exhibit (DESIGN.md §10).
/// All faults corrupt only what the controller observes or commands; the
/// underlying execution (and the RNG draw sequence) is untouched, so a
/// faulted run remains deterministic and checkpointable.
struct HardwareFaultConfig {
  /// Power sensor sticks at a constant reading. power_w reports
  /// stuck_power_w; true_power_w stays honest (energy accounting and the
  /// thermal model keep working — only the controller is deceived).
  bool stuck_power_sensor = false;
  double stuck_power_w = 0.0;
  /// Performance counters freeze: every sample repeats the counter block
  /// (instructions, cycles, ipc, miss rate, mpki, ips) captured on the
  /// first faulted interval.
  bool frozen_counters = false;
  /// DVFS actuator failure: set_level() validates and silently ignores the
  /// request; the core stays at its current operating point.
  bool dvfs_stuck = false;

  bool any() const noexcept {
    return stuck_power_sensor || frozen_counters || dvfs_stuck;
  }
};

class Processor final : public CpuDevice {
 public:
  Processor(ProcessorConfig config, util::Rng rng);

  /// Sets the workload supplying applications. The processor pulls the first
  /// application lazily on the next run_interval(). Pointer is non-owning
  /// and must outlive the processor's use.
  void set_workload(Workload* workload);

  /// Selects the V/f level for subsequent execution.
  void set_level(std::size_t level) override;
  std::size_t level() const noexcept override { return level_; }

  /// Advances simulated time by dt seconds, executing the workload at the
  /// current operating point, and returns aggregated telemetry.
  TelemetrySample run_interval(double dt_s) override;

  /// Application executions completed so far (since the last clear).
  const std::vector<AppExecution>& completed_runs() const noexcept {
    return completed_;
  }
  void clear_completed_runs() noexcept { completed_.clear(); }

  /// Abandons the in-flight application; the next interval pulls a fresh
  /// one from the workload. Used between evaluation episodes.
  void reset_app();

  /// Scales the effective DRAM latency seen by this core (>= 1). Set by
  /// MulticoreProcessor to model shared-memory contention; 1 = uncontended.
  void set_memory_latency_scale(double scale);
  double memory_latency_scale() const noexcept { return mem_latency_scale_; }

  double time_s() const noexcept { return time_s_; }
  const VfTable& vf_table() const noexcept override {
    return config_.vf_table;
  }
  const ProcessorConfig& config() const noexcept { return config_; }
  const std::string& current_app_name() const noexcept;

  /// Die temperature (ambient when the thermal model is disabled).
  double temperature_c() const noexcept;

  /// Arms (or replaces) this device's hardware faults. Faults apply from
  /// the next run_interval()/set_level() on.
  void inject_faults(const HardwareFaultConfig& faults);
  const HardwareFaultConfig& faults() const noexcept { return faults_; }

  /// Serializes all mutable execution state: RNG, die temperature, the
  /// in-flight application run (its profile is stored verbatim — resumed
  /// execution continues the exact same jittered phases), completed-run
  /// log, V/f level, clock and per-interval jitters. The workload pointer
  /// is not saved; re-attach the same workload before resuming.
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

 private:
  struct AppRun {
    AppProfile app;
    std::size_t phase_index = 0;
    double phase_instructions_done = 0.0;
    double start_time_s = 0.0;
    double instructions = 0.0;
    double energy_j = 0.0;
  };

  /// Counter block captured when frozen_counters first fires.
  struct FrozenCounters {
    double instructions = 0.0;
    double cycles = 0.0;
    double ipc = 0.0;
    double miss_rate = 0.0;
    double mpki = 0.0;
    double ips = 0.0;
  };

  void start_next_app();
  PhaseProfile jittered(const PhaseProfile& phase) const;
  void apply_faults(TelemetrySample& sample);

  ProcessorConfig config_;  // lint: ckpt-skip(construction config; restore only validates it)
  mutable util::Rng rng_;
  PerfModel perf_model_;    // lint: ckpt-skip(stateless table derived from config_)
  PowerModel power_model_;  // lint: ckpt-skip(stateless table derived from config_)
  std::optional<ThermalModel> thermal_;
  Workload* workload_ = nullptr;  // lint: ckpt-skip(non-owning; re-attach the same workload before resuming)
  std::optional<AppRun> run_;
  std::vector<AppExecution> completed_;
  std::size_t level_ = 0;
  std::size_t previous_level_ = 0;
  double time_s_ = 0.0;
  double jitter_miss_ = 1.0;     // per-interval multiplicative jitter
  double jitter_activity_ = 1.0;
  double mem_latency_scale_ = 1.0;
  HardwareFaultConfig faults_{};
  std::optional<FrozenCounters> frozen_;
};

}  // namespace fedpower::sim
