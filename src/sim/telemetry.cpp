#include "sim/telemetry.hpp"

#include "util/stats.hpp"

namespace fedpower::sim {

double TraceRecorder::mean_power() const noexcept {
  util::RunningStats s;
  for (const auto& sample : samples_) s.add(sample.power_w);
  return s.mean();
}

double TraceRecorder::mean_freq_mhz() const noexcept {
  util::RunningStats s;
  for (const auto& sample : samples_) s.add(sample.freq_mhz);
  return s.mean();
}

double TraceRecorder::stddev_freq_mhz() const noexcept {
  util::RunningStats s;
  for (const auto& sample : samples_) s.add(sample.freq_mhz);
  return s.stddev();
}

double TraceRecorder::mean_ips() const noexcept {
  util::RunningStats s;
  for (const auto& sample : samples_) s.add(sample.ips);
  return s.mean();
}

double TraceRecorder::violation_rate(double power_limit_w) const noexcept {
  if (samples_.empty()) return 0.0;
  std::size_t violations = 0;
  for (const auto& sample : samples_)
    if (sample.true_power_w > power_limit_w) ++violations;
  return static_cast<double>(violations) /
         static_cast<double>(samples_.size());
}

}  // namespace fedpower::sim
