#include "sim/governor.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fedpower::sim {

OndemandGovernor::OndemandGovernor(double up_threshold, double down_threshold)
    : up_threshold_(up_threshold), down_threshold_(down_threshold) {
  FEDPOWER_EXPECTS(down_threshold >= 0.0);
  FEDPOWER_EXPECTS(up_threshold > down_threshold && up_threshold <= 1.0);
}

std::size_t OndemandGovernor::select_level(const TelemetrySample& sample,
                                           const VfTable& table) {
  ipc_reference_ = std::max(ipc_reference_ * 0.999, sample.ipc);
  const double load =
      ipc_reference_ > 0.0 ? sample.ipc / ipc_reference_ : 1.0;
  if (load >= up_threshold_) {
    level_ = table.size() - 1;  // ondemand jumps straight to max on load
  } else if (load < down_threshold_ && level_ > 0) {
    --level_;
  }
  return level_;
}

void OndemandGovernor::reset() {
  ipc_reference_ = 0.0;
  level_ = 0;
}

ConservativeGovernor::ConservativeGovernor(double up_threshold,
                                           double down_threshold)
    : up_threshold_(up_threshold), down_threshold_(down_threshold) {
  FEDPOWER_EXPECTS(down_threshold >= 0.0);
  FEDPOWER_EXPECTS(up_threshold > down_threshold && up_threshold <= 1.0);
}

std::size_t ConservativeGovernor::select_level(const TelemetrySample& sample,
                                               const VfTable& table) {
  ipc_reference_ = std::max(ipc_reference_ * 0.999, sample.ipc);
  const double load =
      ipc_reference_ > 0.0 ? sample.ipc / ipc_reference_ : 1.0;
  if (load >= up_threshold_) {
    if (level_ + 1 < table.size()) ++level_;  // one step, never a jump
  } else if (load < down_threshold_ && level_ > 0) {
    --level_;
  }
  return level_;
}

void ConservativeGovernor::reset() {
  ipc_reference_ = 0.0;
  level_ = 0;
}

PowerCapGovernor::PowerCapGovernor(double power_limit_w, double headroom_w)
    : power_limit_w_(power_limit_w), headroom_w_(headroom_w) {
  FEDPOWER_EXPECTS(power_limit_w > 0.0);
  FEDPOWER_EXPECTS(headroom_w >= 0.0);
}

std::size_t PowerCapGovernor::select_level(const TelemetrySample& sample,
                                           const VfTable& table) {
  if (!initialized_) {
    // Start in the middle of the range.
    level_ = table.size() / 2;
    initialized_ = true;
    return level_;
  }
  if (sample.power_w > power_limit_w_) {
    if (level_ > 0) --level_;
  } else if (sample.power_w < power_limit_w_ - headroom_w_) {
    if (level_ + 1 < table.size()) ++level_;
  }
  return level_;
}

void PowerCapGovernor::reset() {
  level_ = 0;
  initialized_ = false;
}

}  // namespace fedpower::sim
