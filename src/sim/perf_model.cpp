#include "sim/perf_model.hpp"

namespace fedpower::sim {

PerfModel::PerfModel(PerfModelParams params) : params_(params) {
  FEDPOWER_EXPECTS(params_.mem_latency_ns > 0.0);
  FEDPOWER_EXPECTS(params_.mlp_factor >= 1.0);
}

PhasePerf PerfModel::evaluate(const PhaseProfile& phase, double freq_mhz,
                              double latency_scale) const {
  FEDPOWER_EXPECTS(freq_mhz > 0.0);
  FEDPOWER_EXPECTS(latency_scale >= 1.0);
  FEDPOWER_EXPECTS(phase.base_cpi > 0.0);
  FEDPOWER_EXPECTS(phase.llc_apki >= 0.0);
  FEDPOWER_EXPECTS(phase.llc_miss_rate >= 0.0 && phase.llc_miss_rate <= 1.0);

  const double f_ghz = freq_mhz / 1000.0;
  const double accesses_per_instr = phase.llc_apki / 1000.0;
  const double misses_per_instr = accesses_per_instr * phase.llc_miss_rate;
  const double miss_penalty_cycles =
      params_.mem_latency_ns * latency_scale * f_ghz;
  const double stall_cpi =
      misses_per_instr * miss_penalty_cycles / params_.mlp_factor;

  PhasePerf perf;
  perf.cpi = phase.base_cpi + stall_cpi;
  perf.ipc = 1.0 / perf.cpi;
  perf.ips = freq_mhz * 1e6 / perf.cpi;
  perf.stall_fraction = stall_cpi / perf.cpi;
  perf.mpki = misses_per_instr * 1000.0;
  perf.miss_rate = phase.llc_miss_rate;
  return perf;
}

}  // namespace fedpower::sim
