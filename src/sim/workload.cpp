#include "sim/workload.hpp"

#include "util/assert.hpp"

namespace fedpower::sim {

RotationWorkload::RotationWorkload(std::vector<AppProfile> apps)
    : apps_(std::move(apps)) {
  FEDPOWER_EXPECTS(!apps_.empty());
  for (const auto& app : apps_) validate(app);
}

const AppProfile& RotationWorkload::next(util::Rng&) {
  const AppProfile& app = apps_[index_];
  index_ = (index_ + 1) % apps_.size();
  return app;
}

RandomWorkload::RandomWorkload(std::vector<AppProfile> apps)
    : apps_(std::move(apps)) {
  FEDPOWER_EXPECTS(!apps_.empty());
  for (const auto& app : apps_) validate(app);
}

const AppProfile& RandomWorkload::next(util::Rng& rng) {
  return apps_[rng.uniform_index(apps_.size())];
}

SingleAppWorkload::SingleAppWorkload(AppProfile app) {
  validate(app);
  apps_.push_back(std::move(app));
}

const AppProfile& SingleAppWorkload::next(util::Rng&) { return apps_[0]; }

}  // namespace fedpower::sim
