// Analytical performance model.
//
// An application phase is characterized by its stall-free CPI (a proxy for
// instruction-level parallelism), its last-level-cache access density and
// miss rate, and its switching activity. At a core frequency f the DRAM
// latency — fixed in wall-clock nanoseconds — costs more core cycles, so
// the effective CPI is
//
//   cpi(f) = base_cpi + (misses/instr) * mem_latency_ns * f_GHz / mlp
//
// where mlp models the overlap of outstanding misses (memory-level
// parallelism). This is the standard first-order model behind the "memory
// wall": compute-bound phases speed up almost linearly with f while
// memory-bound phases saturate — exactly the asymmetry the paper's DVFS
// policies must learn (see DESIGN.md §2).
#pragma once

#include "util/assert.hpp"

namespace fedpower::sim {

/// Workload characteristics of one execution phase.
struct PhaseProfile {
  double base_cpi = 1.0;       ///< cycles/instruction without memory stalls
  double llc_apki = 20.0;      ///< LLC accesses per kilo-instruction
  double llc_miss_rate = 0.3;  ///< fraction of LLC accesses that miss
  double activity = 0.7;       ///< switching activity while not stalled [0,1]
  double instructions = 1e9;   ///< dynamic instruction count of the phase
};

/// Machine parameters of the memory subsystem.
struct PerfModelParams {
  double mem_latency_ns = 80.0;  ///< DRAM round-trip latency
  double mlp_factor = 4.0;       ///< average overlapped outstanding misses
};

/// Per-phase, per-frequency performance figures derived in closed form.
struct PhasePerf {
  double cpi = 0.0;         ///< effective cycles per instruction
  double ipc = 0.0;         ///< instructions per cycle (1/cpi)
  double ips = 0.0;         ///< instructions per second at this frequency
  double stall_fraction = 0.0;  ///< share of cycles spent in memory stalls
  double mpki = 0.0;        ///< LLC misses per kilo-instruction
  double miss_rate = 0.0;   ///< LLC miss rate
};

class PerfModel {
 public:
  explicit PerfModel(PerfModelParams params = {});

  /// Closed-form performance of a phase at the given core frequency.
  /// latency_scale multiplies the effective DRAM latency (> 1 under
  /// memory contention from other cores; 1 = uncontended).
  [[nodiscard]] PhasePerf evaluate(const PhaseProfile& phase,
                                   double freq_mhz,
                                   double latency_scale = 1.0) const;

  [[nodiscard]] const PerfModelParams& params() const noexcept {
    return params_;
  }

 private:
  PerfModelParams params_;
};

}  // namespace fedpower::sim
