// First-order RC thermal model (optional extension).
//
// The paper explicitly neglects the power->temperature->leakage coupling
// (§III-A, footnote 2); we provide the model anyway so the assumption can be
// stress-tested: enabling it in ProcessorConfig makes leakage grow with die
// temperature, and an ablation bench quantifies how much the learned
// policies care.
#pragma once

#include "util/assert.hpp"

namespace fedpower::sim {

struct ThermalParams {
  double r_thermal_k_per_w = 25.0;  ///< junction-to-ambient resistance
  double c_thermal_j_per_k = 4.0;   ///< thermal capacitance
  double ambient_c = 25.0;          ///< ambient temperature
  double leakage_temp_coeff = 0.006;///< relative leakage increase per kelvin
};

class ThermalModel {
 public:
  explicit ThermalModel(ThermalParams params = {});

  /// Advances the die temperature given the average power over dt seconds
  /// (exact solution of the linear RC ODE for constant power).
  void step(double power_w, double dt_s);

  double temperature_c() const noexcept { return temperature_c_; }

  /// Steady-state temperature for a constant power draw.
  double steady_state_c(double power_w) const noexcept;

  /// Multiplier applied to leakage power at the current temperature
  /// (1.0 at ambient).
  double leakage_multiplier() const noexcept;

  void reset() noexcept { temperature_c_ = params_.ambient_c; }

  /// Restores a checkpointed die temperature.
  void set_temperature_c(double value) noexcept { temperature_c_ = value; }

  const ThermalParams& params() const noexcept { return params_; }

 private:
  ThermalParams params_;
  double temperature_c_;
};

}  // namespace fedpower::sim
