// FedPower — federated reinforcement learning for power-efficient DVFS on
// edge devices. Umbrella header for the full public API.
//
// Library layout (see DESIGN.md for the rationale):
//   util/      deterministic RNG, statistics, CSV/table output
//   nn/        small dense neural networks (the policy model)
//   sim/       the edge-processor simulator (DVFS, power, workloads)
//   rl/        replay buffer, schedules, rewards, the neural bandit agent
//   fed/       federated averaging: clients, server, transport
//   serve/     sharded async server: epoll front end, SPSC worker shards
//   baselines/ Profit [6] and CollabPolicy [11] comparison techniques
//   core/      the power controller, evaluation and experiment runners
//   runtime/   thread-pool fleet execution (deterministic parallel rounds)
#pragma once

#include "baselines/collab_policy.hpp"
#include "baselines/profit.hpp"
#include "core/controller.hpp"
#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "fed/aggregate.hpp"
#include "fed/async.hpp"
#include "fed/codec.hpp"
#include "fed/dp.hpp"
#include "fed/federation.hpp"
#include "fed/hierarchy.hpp"
#include "fed/personalize.hpp"
#include "fed/secure_agg.hpp"
#include "fed/transport.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/gradcheck.hpp"
#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/checkpoint.hpp"
#include "nn/serialize.hpp"
#include "rl/drift.hpp"
#include "runtime/fleet_runtime.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/epoll_server.hpp"
#include "serve/serve_federation.hpp"
#include "serve/server.hpp"
#include "serve/spsc_queue.hpp"
#include "serve/wire.hpp"
#include "rl/neural_agent.hpp"
#include "rl/neural_q_agent.hpp"
#include "rl/q_replay_buffer.hpp"
#include "rl/policy.hpp"
#include "rl/replay_buffer.hpp"
#include "rl/reward.hpp"
#include "rl/schedule.hpp"
#include "rl/state.hpp"
#include "rl/tabular.hpp"
#include "sim/application.hpp"
#include "sim/generator.hpp"
#include "sim/governor.hpp"
#include "sim/perf_model.hpp"
#include "sim/power_model.hpp"
#include "sim/device.hpp"
#include "sim/multicore.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "sim/telemetry.hpp"
#include "sim/thermal.hpp"
#include "sim/trace_io.hpp"
#include "sim/vf_table.hpp"
#include "sim/workload.hpp"
#include "sim/workload_extra.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/executor.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
