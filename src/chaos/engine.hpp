// Deterministic chaos engine: one seeded RNG stream schedules every fault
// class the soak harness injects (DESIGN.md §13).
//
// The engine is a pure schedule generator. It owns no transports, no
// clients and no server — each begin_round() call advances a single
// xoshiro256++ stream through a FIXED number of draws (one availability
// draw per client, then one shock draw, then at most one shock-target
// draw) and returns a RoundPlan the driver applies: flip ChurnTransport
// links offline/online, abandon a device's application via
// Processor::reset_app(). Because the draw count per round is a pure
// function of the configuration and the client count, the stream position
// after round R is identical on every replay of the same seed — the
// chaos-seed replay contract: same seed, same faults, bit-identical run.
//
// Transport-level faults (drop/delay/truncate/disconnect) are NOT drawn
// here: they stay in FaultInjectingTransport, which keys its own stream
// off the transfer index so a lost transfer never shifts later fates.
// The chaos engine composes with it instead of replacing it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "util/rng.hpp"

namespace fedpower::chaos {

/// Schedule parameters for one soak run. All probabilities are per round.
struct ChaosConfig {
  bool enabled = false;
  std::uint64_t seed = 2026;
  /// P(an online client goes offline this round) — availability churn.
  double leave_probability = 0.0;
  /// P(an offline client comes back this round). The stationary offline
  /// fraction of the on/off process is leave / (leave + rejoin); expected
  /// dwell time offline is 1/rejoin rounds.
  double rejoin_probability = 0.5;
  /// P(one device suffers a workload shock this round: its in-flight
  /// application is abandoned and the next scheduling interval pulls a
  /// fresh one from the workload generator — an app switch under fire).
  double shock_probability = 0.0;
};

/// Cumulative schedule counters (what the soak report prints).
struct ChaosStats {
  std::uint64_t rounds = 0;
  std::uint64_t departures = 0;  ///< online -> offline transitions
  std::uint64_t rejoins = 0;     ///< offline -> online transitions
  std::uint64_t shocks = 0;      ///< workload shocks dealt
  std::uint64_t max_offline = 0; ///< peak simultaneous offline clients
};

/// One round's worth of scheduled faults, in client-index order.
struct RoundPlan {
  std::vector<std::size_t> went_offline;  ///< departures this round
  std::vector<std::size_t> came_online;   ///< rejoins this round
  /// Full availability mask after this round's transitions
  /// (offline[i] != 0 means client i is unreachable this round).
  std::vector<char> offline;
  /// Device hit by a workload shock this round, if any.
  std::optional<std::size_t> shock_device;
};

class ChaosEngine {
 public:
  ChaosEngine(const ChaosConfig& config, std::size_t client_count);

  /// Advances the schedule one round. Draw order is fixed — one uniform
  /// per client in index order (skipped entirely when churn is disabled,
  /// i.e. leave_probability == 0), then one shock Bernoulli and, on a hit,
  /// one target index (skipped when shock_probability == 0) — so the
  /// stream position never depends on the drawn outcomes.
  RoundPlan begin_round();

  [[nodiscard]] std::size_t client_count() const noexcept {
    return offline_.size();
  }
  [[nodiscard]] bool offline(std::size_t client) const;
  [[nodiscard]] std::size_t offline_count() const noexcept;
  [[nodiscard]] const ChaosStats& stats() const noexcept { return stats_; }

  /// FPCK section (tag CHAO): RNG state, availability mask and cumulative
  /// stats. Restoring into an engine built for a different client count
  /// throws StateMismatchError; a resumed run replays the exact schedule
  /// the killed run would have produced.
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

 private:
  // lint: ckpt-skip(construction config, fixed for the run)
  ChaosConfig config_;
  util::Rng rng_;
  std::vector<char> offline_;
  ChaosStats stats_;
};

}  // namespace fedpower::chaos
