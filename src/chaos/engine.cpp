#include "chaos/engine.hpp"

#include <algorithm>
#include <string>

#include "ckpt/errors.hpp"
#include "ckpt/state_io.hpp"
#include "util/assert.hpp"

namespace fedpower::chaos {

namespace {
constexpr ckpt::Tag kChaosTag{'C', 'H', 'A', 'O'};
}  // namespace

ChaosEngine::ChaosEngine(const ChaosConfig& config, std::size_t client_count)
    : config_(config), rng_(config.seed), offline_(client_count, 0) {
  FEDPOWER_EXPECTS(client_count >= 1);
  FEDPOWER_EXPECTS(config_.leave_probability >= 0.0 &&
                   config_.leave_probability <= 1.0);
  FEDPOWER_EXPECTS(config_.rejoin_probability >= 0.0 &&
                   config_.rejoin_probability <= 1.0);
  FEDPOWER_EXPECTS(config_.shock_probability >= 0.0 &&
                   config_.shock_probability <= 1.0);
}

RoundPlan ChaosEngine::begin_round() {
  RoundPlan plan;
  // Availability churn: one draw per client, in index order, whether or
  // not the outcome flips anything. The fixed draw count is load-bearing:
  // it keeps the stream position a pure function of (seed, round), so a
  // resumed run and a clean run stay on the same schedule.
  if (config_.leave_probability > 0.0) {
    for (std::size_t i = 0; i < offline_.size(); ++i) {
      const double u = rng_.uniform();
      if (offline_[i] != 0) {
        if (u < config_.rejoin_probability) {
          offline_[i] = 0;
          plan.came_online.push_back(i);
          ++stats_.rejoins;
        }
      } else if (u < config_.leave_probability) {
        offline_[i] = 1;
        plan.went_offline.push_back(i);
        ++stats_.departures;
      }
    }
  }
  // Workload shock: at most one device per round abandons its in-flight
  // application (the driver calls Processor::reset_app on it).
  if (config_.shock_probability > 0.0 && rng_.bernoulli(config_.shock_probability)) {
    plan.shock_device = static_cast<std::size_t>(
        rng_.uniform_index(static_cast<std::uint64_t>(offline_.size())));
    ++stats_.shocks;
  }
  plan.offline = offline_;
  ++stats_.rounds;
  stats_.max_offline =
      std::max<std::uint64_t>(stats_.max_offline, offline_count());
  return plan;
}

bool ChaosEngine::offline(std::size_t client) const {
  FEDPOWER_EXPECTS(client < offline_.size());
  return offline_[client] != 0;
}

std::size_t ChaosEngine::offline_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(offline_.begin(), offline_.end(),
                    [](char f) { return f != 0; }));
}

void ChaosEngine::save_state(ckpt::Writer& out) const {
  ckpt::write_tag(out, kChaosTag);
  ckpt::save_rng(out, rng_);
  out.u64(offline_.size());
  for (const char f : offline_) out.u8(f != 0 ? 1 : 0);
  out.u64(stats_.rounds);
  out.u64(stats_.departures);
  out.u64(stats_.rejoins);
  out.u64(stats_.shocks);
  out.u64(stats_.max_offline);
}

void ChaosEngine::restore_state(ckpt::Reader& in) {
  ckpt::expect_tag(in, kChaosTag, "chaos engine");
  ckpt::restore_rng(in, rng_);
  const std::uint64_t count = in.u64();
  if (count != offline_.size())
    throw ckpt::StateMismatchError(
        "chaos snapshot was taken with " + std::to_string(count) +
        " client(s), this engine schedules " +
        std::to_string(offline_.size()));
  for (char& f : offline_) f = in.u8() != 0 ? 1 : 0;
  stats_.rounds = in.u64();
  stats_.departures = in.u64();
  stats_.rejoins = in.u64();
  stats_.shocks = in.u64();
  stats_.max_offline = in.u64();
}

}  // namespace fedpower::chaos
