#include "chaos/churn_transport.hpp"

#include <utility>

#include "util/assert.hpp"

namespace fedpower::chaos {

ChurnTransport::ChurnTransport(fed::Transport* inner) : inner_(inner) {
  FEDPOWER_EXPECTS(inner != nullptr);
}

std::vector<std::uint8_t> ChurnTransport::transfer(
    fed::Direction direction, std::vector<std::uint8_t> payload) {
  if (!online_) {
    ++blocked_;
    throw fed::TransportError("chaos churn: device offline");
  }
  return inner_->transfer(direction, std::move(payload));
}

}  // namespace fedpower::chaos
