// Availability-churn transport decorator (DESIGN.md §13).
//
// Wraps any fed::Transport with an on/off switch the chaos driver flips
// from the ChaosEngine's per-round availability mask. While offline, every
// transfer fails with fed::TransportError — exactly the failure mode the
// federation layers already demote to a per-round dropout — so a churned
// client rides the existing lost-client path: no upload, no defense
// observation, no reputation penalty, and (with lazy fleets) eventual
// dehydration until it rejoins.
//
// The decorator deliberately holds NO checkpointed state: the ChaosEngine
// owns the authoritative availability mask (saved under its CHAO tag) and
// the driver re-applies it to these switches at the top of every round, so
// a resumed run reconstructs the exact link states without a transport
// section in the snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fed/transport.hpp"

namespace fedpower::chaos {

class ChurnTransport final : public fed::Transport {
 public:
  explicit ChurnTransport(fed::Transport* inner);

  /// Flips the link; the chaos driver calls this once per round per client
  /// from the RoundPlan availability mask.
  void set_online(bool online) noexcept { online_ = online; }
  [[nodiscard]] bool online() const noexcept { return online_; }

  /// Transfers this decorator refused because the link was offline.
  [[nodiscard]] std::size_t blocked_transfers() const noexcept {
    return blocked_;
  }

  std::vector<std::uint8_t> transfer(
      fed::Direction direction, std::vector<std::uint8_t> payload) override;

  const fed::TrafficStats& stats() const noexcept override {
    return inner_->stats();
  }

  double cumulative_latency_s() const noexcept override {
    // An offline link accrues no latency — the failure is immediate — so
    // deadline accounting sees only what the inner link actually spent.
    return inner_->cumulative_latency_s();
  }

 private:
  fed::Transport* inner_;
  bool online_ = true;
  std::size_t blocked_ = 0;
};

}  // namespace fedpower::chaos
