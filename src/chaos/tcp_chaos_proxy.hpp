// Deterministic TCP fault-injection proxy (DESIGN.md §14).
//
// Sits between serve clients and the EpollFrontEnd and injects the
// socket-level faults the in-process ChaosEngine cannot express:
// connection refusals, mid-stream resets, mid-frame truncations and write
// stalls — real kernel-visible failures on real sockets, not simulated
// verdicts.
//
// Determinism follows the ChaosEngine fixed-draw contract: one seeded
// stream, and every accepted connection consumes exactly
// TcpChaosSchedule::kDrawsPerConnection draws (fate, fault offset, stall
// length) whether or not each draw is used. The stream position before
// connection k is therefore the pure function k * kDrawsPerConnection of
// the seed alone, so the k-th connection's fate never depends on which
// faults fired earlier, on probability knobs that gate other fates, or on
// accept timing. Same seed => same fault sequence by connection index,
// which is what lets a kill/resume soak replay the exact same network
// weather (the replay contract the tcpchaos tests pin).
//
// What stays nondeterministic is *which client* lands on connection k —
// OS scheduling decides accept order. The end-to-end bit-identity gate in
// bench_soak --tcp holds anyway because every fault is masked by a layer
// above: refusals/resets by client reconnect + resume, truncations by
// frame reassembly discarding the partial frame, duplicates by
// first-arrival dedup, stalls by bounded waits. Fault *counts* are
// deterministic; fault *victims* are not; committed bytes are.
//
// Threading mirrors TcpReflector: an accept-loop thread plus two pump
// threads per live connection (client->server applies the fault;
// server->client relays verbatim). Finished handlers are reaped on the
// accept path, so a churny soak holds threads per live connection, not
// per accept. No epoll here — the thread-per-connection shape is fine for
// a test harness and keeps the raw-epoll surface confined to the two L7
// allowlisted TUs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace fedpower::chaos {

/// Socket-level fate of one proxied connection.
enum class SocketFault : std::uint8_t {
  kClean = 0,     ///< relay verbatim
  kRefuse = 1,    ///< close immediately after accept (connect refused)
  kReset = 2,     ///< cut both directions after N client bytes
  kTruncate = 3,  ///< forward half of one client frame, then cut
  kStall = 4,     ///< pause the client->server pump once, then relay
};

/// The three fixed draws for one connection, resolved into a plan.
struct ConnectionPlan {
  SocketFault fault = SocketFault::kClean;
  /// Client-byte offset at which the fault arms (reset/truncate/stall).
  std::uint64_t fault_after_bytes = 0;
  /// Stall length; only applied when fault == kStall.
  double stall_s = 0.0;
};

struct TcpChaosConfig {
  std::uint64_t seed = 1;
  /// Fate probabilities; evaluated in this cumulative order, remainder is
  /// kClean. Sum must be <= 1.
  double refuse_probability = 0.0;
  double reset_probability = 0.0;
  double truncate_probability = 0.0;
  double stall_probability = 0.0;
  /// fault_after_bytes = reset_min_bytes + u * reset_window_bytes.
  std::uint64_t reset_min_bytes = 5;
  std::uint64_t reset_window_bytes = 64;
  /// stall_s = stall_min_s + u * (stall_max_s - stall_min_s).
  double stall_min_s = 0.005;
  double stall_max_s = 0.05;
};

/// The seeded fault schedule, separable from the proxy so tests can replay
/// it and assert the fixed-draw contract without opening a socket.
class TcpChaosSchedule {
 public:
  /// Draws consumed per connection: fate, fault offset, stall length —
  /// always all three, used or not (the fixed-draw contract).
  static constexpr std::size_t kDrawsPerConnection = 3;

  explicit TcpChaosSchedule(const TcpChaosConfig& config);

  /// Plan for the next connection (advances the stream by exactly
  /// kDrawsPerConnection).
  ConnectionPlan next();

  /// Plan for connection `index`, recomputed from the seed alone; agrees
  /// with the index-th next() of a fresh schedule.
  [[nodiscard]] ConnectionPlan at(std::size_t index) const;

  /// Connections planned so far via next().
  [[nodiscard]] std::size_t drawn() const noexcept { return drawn_; }

 private:
  static ConnectionPlan draw(util::Rng& rng, const TcpChaosConfig& config);

  TcpChaosConfig config_;
  util::Rng rng_;
  std::size_t drawn_ = 0;
};

/// The proxy itself: listens on an ephemeral loopback port, relays each
/// accepted connection to the upstream port through its scheduled fault.
class TcpChaosProxy {
 public:
  /// Starts listening and accepting. Throws fed::TransportError on socket
  /// errors.
  TcpChaosProxy(std::uint16_t upstream_port, TcpChaosConfig config);
  ~TcpChaosProxy();

  TcpChaosProxy(const TcpChaosProxy&) = delete;
  TcpChaosProxy& operator=(const TcpChaosProxy&) = delete;

  /// Port clients should connect to instead of the upstream's.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting, cuts every live relay and joins all threads
  /// (idempotent).
  void stop();

  // Telemetry (atomics; readable from any thread). Refusals count at
  // accept; the other fault counters count only when the fault actually
  // fired (a connection can end before its fault offset is reached).
  [[nodiscard]] std::size_t connections() const noexcept {
    return connections_.load();
  }
  [[nodiscard]] std::size_t refusals() const noexcept {
    return refusals_.load();
  }
  [[nodiscard]] std::size_t resets() const noexcept { return resets_.load(); }
  [[nodiscard]] std::size_t truncations() const noexcept {
    return truncations_.load();
  }
  [[nodiscard]] std::size_t stalls() const noexcept { return stalls_.load(); }

  /// Scheduled fate of every accepted connection, in accept order; the
  /// replay-contract test checks this against a fresh schedule.
  [[nodiscard]] std::vector<SocketFault> scheduled_fates() const;

 private:
  struct Handler {
    std::thread thread;
    int client_fd = -1;
    int server_fd = -1;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void handle(int client_fd, int server_fd, ConnectionPlan plan);
  void reap_finished_locked();

  TcpChaosConfig config_;
  std::uint16_t upstream_port_ = 0;
  std::uint16_t port_ = 0;
  int listener_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  bool stopped_ = false;

  /// Accept-thread-owned; no lock needed (single consumer).
  TcpChaosSchedule schedule_;

  mutable std::mutex mutex_;  ///< guards handlers_ and fates_
  std::vector<Handler> handlers_;
  std::vector<SocketFault> fates_;

  std::atomic<std::size_t> connections_{0};
  std::atomic<std::size_t> refusals_{0};
  std::atomic<std::size_t> resets_{0};
  std::atomic<std::size_t> truncations_{0};
  std::atomic<std::size_t> stalls_{0};
};

}  // namespace fedpower::chaos
