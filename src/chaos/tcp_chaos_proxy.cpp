#include "chaos/tcp_chaos_proxy.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "fed/tcp_transport.hpp"
#include "util/assert.hpp"

namespace fedpower::chaos {

namespace {

[[noreturn]] void throw_errno(const char* what, int err) {
  throw fed::TransportError(std::string("tcp chaos proxy: ") + what + ": " +
                            std::strerror(err));
}

/// Children are fork+exec'd while the proxy runs; none of its descriptors
/// may leak into them. accept4(SOCK_CLOEXEC) would be atomic but is not in
/// the L7 syscall allowlist for this TU, so set the flag right after the
/// descriptor appears — single-purpose bench processes exec nothing in the
/// window.
void set_cloexec(int fd) noexcept { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// One recv(); returns bytes read, 0 on orderly close, -1 on error. EINTR
/// restarts.
ssize_t read_some(int fd, std::uint8_t* data, std::size_t size) noexcept {
  for (;;) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

/// recv() exactly `size` bytes; false on close/error.
bool read_exact(int fd, std::uint8_t* data, std::size_t size) noexcept {
  while (size > 0) {
    const ssize_t n = read_some(fd, data, size);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// send() the whole buffer; false on error. MSG_NOSIGNAL keeps a closed
/// peer from killing the process with SIGPIPE.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) noexcept {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void shutdown_both(int a, int b) noexcept {
  ::shutdown(a, SHUT_RDWR);
  ::shutdown(b, SHUT_RDWR);
}

}  // namespace

TcpChaosSchedule::TcpChaosSchedule(const TcpChaosConfig& config)
    : config_(config), rng_(config.seed) {
  FEDPOWER_EXPECTS(config.refuse_probability >= 0.0);
  FEDPOWER_EXPECTS(config.reset_probability >= 0.0);
  FEDPOWER_EXPECTS(config.truncate_probability >= 0.0);
  FEDPOWER_EXPECTS(config.stall_probability >= 0.0);
  FEDPOWER_EXPECTS(config.refuse_probability + config.reset_probability +
                       config.truncate_probability +
                       config.stall_probability <=
                   1.0);
  FEDPOWER_EXPECTS(config.stall_min_s <= config.stall_max_s);
}

ConnectionPlan TcpChaosSchedule::draw(util::Rng& rng,
                                      const TcpChaosConfig& config) {
  // All three draws are consumed unconditionally and each costs exactly
  // one next_u64 (uniform(); never uniform_index, whose rejection step
  // consumes a variable number), so the stream advances by precisely
  // kDrawsPerConnection per call — the fixed-draw contract.
  const double fate = rng.uniform();
  const double offset = rng.uniform();
  const double stall = rng.uniform();

  ConnectionPlan plan;
  double edge = config.refuse_probability;
  if (fate < edge) {
    plan.fault = SocketFault::kRefuse;
  } else if (fate < (edge += config.reset_probability)) {
    plan.fault = SocketFault::kReset;
  } else if (fate < (edge += config.truncate_probability)) {
    plan.fault = SocketFault::kTruncate;
  } else if (fate < (edge += config.stall_probability)) {
    plan.fault = SocketFault::kStall;
  } else {
    plan.fault = SocketFault::kClean;
  }
  plan.fault_after_bytes =
      config.reset_min_bytes +
      static_cast<std::uint64_t>(
          offset * static_cast<double>(config.reset_window_bytes));
  plan.stall_s =
      config.stall_min_s + stall * (config.stall_max_s - config.stall_min_s);
  return plan;
}

ConnectionPlan TcpChaosSchedule::next() {
  ++drawn_;
  return draw(rng_, config_);
}

ConnectionPlan TcpChaosSchedule::at(std::size_t index) const {
  util::Rng rng(config_.seed);
  for (std::size_t i = 0; i < index * kDrawsPerConnection; ++i)
    (void)rng.next_u64();
  return draw(rng, config_);
}

TcpChaosProxy::TcpChaosProxy(std::uint16_t upstream_port,
                             TcpChaosConfig config)
    : config_(config), upstream_port_(upstream_port), schedule_(config) {
  listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener_ < 0) throw_errno("socket failed", errno);
  set_cloexec(listener_);
  const int reuse = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0)
    throw_errno("bind failed", errno);
  socklen_t len = sizeof addr;
  ::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listener_, 64) != 0) throw_errno("listen failed", errno);
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpChaosProxy::~TcpChaosProxy() { stop(); }

std::vector<SocketFault> TcpChaosProxy::scheduled_fates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fates_;
}

void TcpChaosProxy::stop() {
  if (stopped_) return;
  stopped_ = true;
  running_ = false;
  // Closing the listener unblocks accept().
  ::shutdown(listener_, SHUT_RDWR);
  ::close(listener_);
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited, so handlers_ is stable now.
  std::vector<Handler> handlers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    handlers.swap(handlers_);
  }
  // Shutdown unblocks pumps parked in recv(); fds stay open until every
  // handler has exited, so no pump can race a reused descriptor.
  for (const Handler& handler : handlers)
    shutdown_both(handler.client_fd, handler.server_fd);
  for (Handler& handler : handlers)
    if (handler.thread.joinable()) handler.thread.join();
  for (const Handler& handler : handlers) {
    ::close(handler.client_fd);
    ::close(handler.server_fd);
  }
}

void TcpChaosProxy::reap_finished_locked() {
  // Joining under mutex_ cannot deadlock (handlers never take the mutex
  // after startup) and cannot block: the done flag is the handler's final
  // action.
  std::size_t live = 0;
  for (std::size_t i = 0; i < handlers_.size(); ++i) {
    Handler& handler = handlers_[i];
    if (handler.done->load()) {
      if (handler.thread.joinable()) handler.thread.join();
      ::close(handler.client_fd);
      ::close(handler.server_fd);
    } else {
      if (live != i) handlers_[live] = std::move(handler);
      ++live;
    }
  }
  handlers_.resize(live);
}

void TcpChaosProxy::accept_loop() {
  while (running_) {
    // accept4 is L7-confined to the transport TUs; plain accept + fcntl
    // is equivalent here (see set_cloexec).
    const int client_fd = ::accept(listener_, nullptr, nullptr);
    if (client_fd < 0) {
      if (!running_) break;  // listener closed by stop()
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK)
        continue;
      break;  // genuinely fatal
    }
    if (!running_) {
      ::close(client_fd);
      break;
    }
    set_cloexec(client_fd);
    connections_.fetch_add(1);
    const ConnectionPlan plan = schedule_.next();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      fates_.push_back(plan.fault);
    }

    if (plan.fault == SocketFault::kRefuse) {
      // The client sees a connection that opens and dies before a single
      // byte — indistinguishable from a server refusing service.
      refusals_.fetch_add(1);
      ::close(client_fd);
      continue;
    }

    // Blocking loopback connect to the upstream front end; if the
    // upstream is gone the client just sees another failed connection.
    const int server_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (server_fd < 0) {
      ::close(client_fd);
      continue;
    }
    set_cloexec(server_fd);
    sockaddr_in upstream{};
    upstream.sin_family = AF_INET;
    upstream.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    upstream.sin_port = htons(upstream_port_);
    if (::connect(server_fd, reinterpret_cast<sockaddr*>(&upstream),
                  sizeof upstream) != 0) {
      ::close(server_fd);
      ::close(client_fd);
      continue;
    }
    const int nodelay = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                 sizeof nodelay);
    ::setsockopt(server_fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                 sizeof nodelay);

    const std::lock_guard<std::mutex> lock(mutex_);
    reap_finished_locked();
    Handler handler;
    handler.client_fd = client_fd;
    handler.server_fd = server_fd;
    handler.done = std::make_shared<std::atomic<bool>>(false);
    auto done = handler.done;
    handler.thread = std::thread([this, client_fd, server_fd, plan, done] {
      handle(client_fd, server_fd, plan);
      done->store(true);
    });
    handlers_.push_back(std::move(handler));
  }
}

void TcpChaosProxy::handle(int client_fd, int server_fd,
                           ConnectionPlan plan) {
  // Server->client pump: always verbatim (downlink faults would only
  // retread the same client-retry path the uplink faults already
  // exercise). Ends on either side closing; shutdown_both then wakes the
  // client->server pump.
  std::thread downstream([client_fd, server_fd] {
    std::uint8_t buffer[4096];
    for (;;) {
      const ssize_t n = read_some(server_fd, buffer, sizeof buffer);
      if (n <= 0) break;
      if (!write_all(client_fd, buffer, static_cast<std::size_t>(n))) break;
    }
    shutdown_both(client_fd, server_fd);
  });

  std::uint8_t buffer[4096];
  std::uint64_t seen = 0;  // client bytes pumped so far
  bool fault_armed = plan.fault == SocketFault::kReset ||
                     plan.fault == SocketFault::kStall;

  if (plan.fault == SocketFault::kTruncate) {
    // Frame-aware pump: relay whole frames until the fault offset is
    // crossed, then forward only the length header plus half the body of
    // the next frame — the server is guaranteed to see an incomplete
    // frame in its reassembly buffer when the connection dies, which is
    // exactly the truncated_frames() path under test.
    for (;;) {
      std::uint8_t header[4];
      if (!read_exact(client_fd, header, sizeof header)) break;
      const std::uint32_t frame_len = fed::load_u32_le(header);
      if (frame_len == 0 || frame_len > fed::kMaxFrameBytes) break;
      std::vector<std::uint8_t> body(frame_len);
      if (!read_exact(client_fd, body.data(), body.size())) break;
      if (seen >= plan.fault_after_bytes) {
        truncations_.fetch_add(1);
        if (write_all(server_fd, header, sizeof header))
          (void)write_all(server_fd, body.data(), frame_len / 2);
        break;
      }
      if (!write_all(server_fd, header, sizeof header)) break;
      if (!write_all(server_fd, body.data(), body.size())) break;
      seen += sizeof header + frame_len;
    }
  } else {
    for (;;) {
      const ssize_t n = read_some(client_fd, buffer, sizeof buffer);
      if (n <= 0) break;
      std::size_t chunk = static_cast<std::size_t>(n);
      if (fault_armed && seen + chunk >= plan.fault_after_bytes) {
        if (plan.fault == SocketFault::kReset) {
          // Forward exactly up to the fault offset, then cut both ways:
          // the client loses the connection mid-operation, the server
          // sees a (possibly mid-frame) EOF.
          const std::size_t keep =
              static_cast<std::size_t>(plan.fault_after_bytes - seen);
          resets_.fetch_add(1);
          if (keep > 0) (void)write_all(server_fd, buffer, keep);
          break;
        }
        // Stall: one pause at the fault offset, then relay cleanly. Sliced
        // sleep so stop() is never stuck behind a long stall.
        stalls_.fetch_add(1);
        fault_armed = false;
        double remaining = plan.stall_s;
        while (remaining > 0.0 && running_.load()) {
          const double slice = std::min(remaining, 0.01);
          std::this_thread::sleep_for(std::chrono::duration<double>(slice));
          remaining -= slice;
        }
      }
      if (!write_all(server_fd, buffer, chunk)) break;
      seen += chunk;
    }
  }

  shutdown_both(client_fd, server_fd);
  if (downstream.joinable()) downstream.join();
}

}  // namespace fedpower::chaos
