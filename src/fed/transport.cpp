#include "fed/transport.hpp"

namespace fedpower::fed {

InProcessTransport::InProcessTransport(double base_latency_s,
                                       double bandwidth_bytes_per_s)
    : base_latency_s_(base_latency_s),
      bandwidth_bytes_per_s_(bandwidth_bytes_per_s) {
  FEDPOWER_EXPECTS(base_latency_s >= 0.0);
  FEDPOWER_EXPECTS(bandwidth_bytes_per_s > 0.0);
}

std::vector<std::uint8_t> InProcessTransport::transfer(
    Direction direction, std::vector<std::uint8_t> payload) {
  const std::size_t bytes = payload.size();
  if (direction == Direction::kUplink) {
    ++stats_.uplink_transfers;
    stats_.uplink_bytes += bytes;
  } else {
    ++stats_.downlink_transfers;
    stats_.downlink_bytes += bytes;
  }
  stats_.total_latency_s +=
      base_latency_s_ + static_cast<double>(bytes) / bandwidth_bytes_per_s_;
  return payload;
}

}  // namespace fedpower::fed
