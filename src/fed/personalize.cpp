#include "fed/personalize.hpp"

#include <algorithm>

namespace fedpower::fed {

PersonalizedClient::PersonalizedClient(FederatedClient* inner,
                                       std::vector<bool> shared_mask)
    : inner_(inner),
      mask_(std::move(shared_mask)),
      shared_count_(static_cast<std::size_t>(
          std::count(mask_.begin(), mask_.end(), true))) {
  FEDPOWER_EXPECTS(inner != nullptr);
  FEDPOWER_EXPECTS(!mask_.empty());
  FEDPOWER_EXPECTS(shared_count_ > 0);  // a fully private client makes no
                                        // sense in a federation
}

void PersonalizedClient::receive_global(std::span<const double> params) {
  FEDPOWER_EXPECTS(params.size() == mask_.size());
  std::vector<double> merged = inner_->local_parameters();
  FEDPOWER_EXPECTS(merged.size() == mask_.size());
  for (std::size_t i = 0; i < mask_.size(); ++i)
    if (mask_[i]) merged[i] = params[i];
  inner_->receive_global(merged);
}

std::vector<bool> shared_body_mask(std::size_t total_params,
                                   std::size_t head_params) {
  FEDPOWER_EXPECTS(head_params < total_params);
  std::vector<bool> mask(total_params, true);
  for (std::size_t i = total_params - head_params; i < total_params; ++i)
    mask[i] = false;
  return mask;
}

}  // namespace fedpower::fed
