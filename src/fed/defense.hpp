// Server-side Byzantine defense pipeline (DESIGN.md §10).
//
// The federation's averaging rules assume every upload is an honest local
// model; a single misbehaving device (sign-flipped weights, a stuck power
// sensor corrupting rewards, a replayed stale model) can steer plain FedAvg
// arbitrarily. This pipeline screens each decoded upload *before* it can
// reach the aggregate and tracks a per-client reputation so persistent
// offenders are quarantined instead of being re-screened forever:
//
//   1. norm screen — the L2 norm of the client's update (theta_i - g_prev)
//      is compared against a robust running median of recently accepted
//      norms; moderately oversized updates are clipped back to the norm
//      envelope, grossly oversized ones are rejected outright.
//   2. cosine screen — the cosine distance between the uploaded model and
//      the previous global model; a sign-flipped or heavily rotated model
//      sits near distance 2 while honest local training stays close to the
//      broadcast it started from.
//   3. reputation & quarantine — every screening verdict moves the client's
//      reputation; below the quarantine threshold the client keeps
//      receiving broadcasts (it may merely be faulty, and an eventual
//      recovery needs the current global model) but its uploads are
//      excluded from aggregation. A quarantined client that delivers
//      `probation_rounds` consecutive clean uploads is re-admitted.
//
// Determinism contract (DESIGN.md §7/§8): every loop below runs in client
// index order or coordinate order with explicit accumulation — no hash
// containers, no std::accumulate — so the screening decisions (and thus
// the round outcome) are bit-identical at every thread count. Screening
// reads pipeline state but mutates nothing; all state transitions happen
// in commit_round(), which the server calls only after the quorum held, so
// an aborted round leaves reputations untouched (matching the untouched
// round counter).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ckpt/binary_io.hpp"

namespace fedpower::fed {

// --- shared screening primitives ----------------------------------------
// Both federation servers — the synchronous FederatedAveraging and the
// sharded serve pipeline — route uploads through these exact functions, so
// their non-finite/norm verdict counters agree under identical fault
// seeds (the serve-path screening-parity contract, DESIGN.md §13).

/// L2 norm accumulated in coordinate order (the model-order FP contract,
/// DESIGN.md §8 L3). Defined in dp.cpp; both screening paths and the DP
/// clipping path share the one accumulation loop.
[[nodiscard]] double l2_norm(std::span<const double> values) noexcept;

/// True when any coordinate is NaN or infinite — the server-core screen a
/// diverged or malicious upload must never pass.
bool any_non_finite(std::span<const double> values);

/// Median of the scratch window via nth_element (even sizes average the
/// two middle elements). Deterministic and O(window); the scratch is taken
/// by value because nth_element reorders it.
double robust_median(std::vector<double> scratch);

struct DefenseConfig {
  /// Master switch; a default-constructed config keeps the legacy
  /// screen-nothing behaviour.
  bool enabled = false;

  // --- update screening --------------------------------------------------
  /// Updates with norm above clip_multiplier * median(history) are scaled
  /// back to that envelope (admitted, but bounded).
  double norm_clip_multiplier = 2.5;
  /// Updates with norm above screen_multiplier * median(history) are
  /// rejected outright. Must be >= norm_clip_multiplier.
  double norm_screen_multiplier = 6.0;
  /// Uploads whose cosine distance to the previous global model exceeds
  /// this are rejected (distance 0 = same direction, 2 = sign-flipped).
  double cosine_max_distance = 0.8;
  /// Completed rounds before the screens arm: the first global models are
  /// near-random, so norms and angles carry no signal yet.
  std::size_t warmup_rounds = 3;
  /// Accepted-norm history ring capacity (the median's window).
  std::size_t norm_history = 64;
  /// Accepted norms required in the history before the norm screen arms.
  std::size_t norm_min_samples = 8;

  // --- reputation & quarantine -------------------------------------------
  double initial_reputation = 1.0;
  /// Subtracted on every screened-out (or non-finite) upload.
  double fail_penalty = 0.25;
  /// Added (up to 1.0) on every accepted upload.
  double pass_credit = 0.05;
  /// Reputation below this quarantines the client.
  double quarantine_threshold = 0.5;
  /// Consecutive clean uploads a quarantined client must deliver before it
  /// is re-admitted (its re-admission takes effect the following round).
  std::size_t probation_rounds = 3;
  /// Reputation granted on re-admission (a second offence re-quarantines
  /// quickly).
  double readmit_reputation = 0.6;
};

/// Screening verdict for one client's upload in one round.
enum class ScreenVerdict : std::uint8_t {
  kAccepted = 0,    ///< upload enters the aggregate unchanged
  kClipped = 1,     ///< admitted after norm clipping
  kNormReject = 2,  ///< update norm grossly outside the envelope
  kCosineReject = 3,///< model points away from the previous global
  kNonFinite = 4,   ///< NaN/inf upload (screened by the server core)
};

/// One client's screening observation, produced by screen() and consumed by
/// commit_round(). `client` indexes the federation's client list.
struct ScreenObservation {
  std::size_t client = 0;
  ScreenVerdict verdict = ScreenVerdict::kAccepted;
  /// L2 norm of the (possibly clipped) update; what enters the history.
  double accepted_norm = 0.0;
};

/// What commit_round() decided, in client index order.
struct DefenseRoundLog {
  std::vector<std::size_t> screened;   ///< active clients rejected this round
  std::vector<std::size_t> readmitted; ///< quarantined clients re-admitted
  std::vector<std::size_t> newly_quarantined;
  std::size_t clipped = 0;             ///< admitted-after-clipping count
};

class DefensePipeline {
 public:
  DefensePipeline(DefenseConfig config, std::size_t client_count);

  const DefenseConfig& config() const noexcept { return config_; }
  std::size_t client_count() const noexcept { return clients_.size(); }

  bool quarantined(std::size_t client) const;
  double reputation(std::size_t client) const;
  std::size_t quarantined_count() const noexcept;
  std::size_t rounds_committed() const noexcept { return rounds_; }

  /// Screens one decoded upload against the previous global model. May
  /// rescale `upload` in place (norm clipping); never mutates pipeline
  /// state. Returns the observation to hand to commit_round().
  ScreenObservation screen(std::size_t client, std::vector<double>& upload,
                           std::span<const double> previous_global) const;

  /// Observation for an upload the server core already rejected (NaN/inf).
  ScreenObservation non_finite(std::size_t client) const;

  /// Applies one completed round's observations — reputation deltas,
  /// quarantine transitions, probation bookkeeping, norm history — in
  /// client index order. Call only after the round's quorum held; a round
  /// aborted by QuorumError must simply drop its observations.
  DefenseRoundLog commit_round(
      const std::vector<ScreenObservation>& observations);

  /// Serializes reputation, quarantine and norm-history state (tag DFNS).
  void save_state(ckpt::Writer& out) const;
  /// Throws ckpt::StateMismatchError when the snapshot was taken with a
  /// different client count.
  void restore_state(ckpt::Reader& in);

 private:
  struct ClientState {
    double reputation = 1.0;
    bool quarantined = false;
    std::uint64_t probation_streak = 0;  ///< clean uploads while quarantined
    std::uint64_t screened_total = 0;
    std::uint64_t readmissions = 0;
  };

  bool norm_screen_armed() const noexcept;
  double norm_history_median() const;

  DefenseConfig config_;  // lint: ckpt-skip(construction config; restore only validates it)
  std::vector<ClientState> clients_;
  /// Ring buffer of recently accepted update norms (insertion order; the
  /// cursor marks the next overwrite slot once the ring is full).
  std::vector<double> norm_history_;
  std::size_t norm_cursor_ = 0;
  std::size_t rounds_ = 0;
};

}  // namespace fedpower::fed
