#include "fed/byzantine.hpp"

#include <cmath>
#include <string>

#include "ckpt/errors.hpp"
#include "util/assert.hpp"

namespace fedpower::fed {

ByzantineClient::ByzantineClient(FederatedClient* inner,
                                 ClientFaultConfig config)
    : inner_(inner), config_(config) {
  FEDPOWER_EXPECTS(inner_ != nullptr);
  FEDPOWER_EXPECTS(std::isfinite(config_.scale));
  if (config_.attack == UploadAttack::kStaleReplay)
    FEDPOWER_EXPECTS(config_.stale_rounds >= 1);
}

void ByzantineClient::receive_global(std::span<const double> params) {
  inner_->receive_global(params);
}

std::size_t ByzantineClient::local_sample_count() const {
  return inner_->local_sample_count();
}

void ByzantineClient::run_local_round() {
  inner_->run_local_round();
  ++rounds_seen_;
  if (config_.attack == UploadAttack::kStaleReplay) {
    // Record the honest model even before start_round, so the replay has
    // genuinely stale material the moment the attack activates.
    history_.push_back(inner_->local_parameters());
    while (history_.size() > config_.stale_rounds) history_.pop_front();
  }
}

std::vector<double> ByzantineClient::local_parameters() const {
  std::vector<double> params = inner_->local_parameters();
  if (!attack_active()) return params;
  switch (config_.attack) {
    case UploadAttack::kNone:
      break;
    case UploadAttack::kSignFlip: {
      const double factor = -std::fabs(config_.scale);
      for (double& p : params) p *= factor;
      break;
    }
    case UploadAttack::kScale: {
      const double factor = std::fabs(config_.scale);
      for (double& p : params) p *= factor;
      break;
    }
    case UploadAttack::kStaleReplay:
      // Nothing recorded yet (attack active from round 0): stay honest
      // rather than upload an empty model the server would drop.
      if (!history_.empty()) return history_.front();
      break;
  }
  return params;
}

namespace {
constexpr ckpt::Tag kByzantineTag{'B', 'Y', 'Z', 'C'};
}  // namespace

void ByzantineClient::save_state(ckpt::Writer& out) const {
  write_tag(out, kByzantineTag);
  out.u64(rounds_seen_);
  out.u64(history_.size());
  for (const std::vector<double>& model : history_) out.vec_f64(model);
}

void ByzantineClient::restore_state(ckpt::Reader& in) {
  expect_tag(in, kByzantineTag, "byzantine client");
  rounds_seen_ = in.u64();
  const std::uint64_t entries = in.u64();
  if (entries > config_.stale_rounds)
    throw ckpt::StateMismatchError(
        "byzantine snapshot holds " + std::to_string(entries) +
        " replay model(s), this config's window is " +
        std::to_string(config_.stale_rounds));
  history_.clear();
  for (std::uint64_t e = 0; e < entries; ++e)
    history_.push_back(in.vec_f64());
}

}  // namespace fedpower::fed
