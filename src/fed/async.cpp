#include "fed/async.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fedpower::fed {

AsyncFederation::AsyncFederation(std::vector<FederatedClient*> clients,
                                 std::vector<std::size_t> periods,
                                 Transport* transport, AsyncConfig config)
    : clients_(std::move(clients)),
      periods_(std::move(periods)),
      transport_(transport),
      config_(config) {
  FEDPOWER_EXPECTS(!clients_.empty());
  FEDPOWER_EXPECTS(periods_.size() == clients_.size());
  FEDPOWER_EXPECTS(transport_ != nullptr);
  FEDPOWER_EXPECTS(config_.mixing_rate > 0.0 && config_.mixing_rate <= 1.0);
  FEDPOWER_EXPECTS(config_.staleness_power >= 0.0);
  for (const auto* client : clients_) FEDPOWER_EXPECTS(client != nullptr);
  for (const std::size_t period : periods_) FEDPOWER_EXPECTS(period >= 1);
  base_version_.assign(clients_.size(), 0);
}

void AsyncFederation::initialize(std::vector<double> global) {
  FEDPOWER_EXPECTS(!global.empty());
  global_ = std::move(global);
  const std::vector<std::uint8_t> broadcast =
      Float32Codec::instance().encode(global_);
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    const auto delivered =
        transport_->transfer(Direction::kDownlink, broadcast);
    clients_[c]->receive_global(Float32Codec::instance().decode(delivered));
    base_version_[c] = 0;
  }
}

void AsyncFederation::set_local_executor(util::ParallelFor executor) {
  executor_ = std::move(executor);
}

void AsyncFederation::finish_round(std::size_t client) {
  // The client has already trained (on whatever global it last fetched);
  // upload its local model and merge.
  std::vector<double> local;
  try {
    const auto payload = transport_->transfer(
        Direction::kUplink, Float32Codec::instance().encode(
                                clients_[client]->local_parameters()));
    local = Float32Codec::instance().decode(payload);
  } catch (const TransportError&) {
    // Update lost in flight: the client keeps training from its stale
    // base and re-uploads at its next period.
    ++stats_.dropouts;
    return;
  } catch (const std::invalid_argument&) {
    ++stats_.dropouts;  // payload damaged in flight
    return;
  }
  if (local.size() != global_.size()) {
    ++stats_.dropouts;  // decoded to the wrong shape: treat as corrupt
    return;
  }

  const double staleness = static_cast<double>(
      stats_.server_version - base_version_[client]);
  const double weight =
      config_.mixing_rate /
      std::pow(1.0 + staleness, config_.staleness_power);
  // Per-coordinate blend: coordinates are independent, so large models
  // shard the loop across the executor with bit-identical results.
  if (executor_ && global_.size() >= kParallelAggregationMinWork) {
    executor_(global_.size(), [&](std::size_t i) {
      global_[i] = (1.0 - weight) * global_[i] + weight * local[i];
    });
  } else {
    for (std::size_t i = 0; i < global_.size(); ++i)
      global_[i] = (1.0 - weight) * global_[i] + weight * local[i];
  }

  ++stats_.merges;
  ++stats_.server_version;
  staleness_sum_ += staleness;
  stats_.max_staleness = std::max(stats_.max_staleness, staleness);
  stats_.mean_staleness =
      staleness_sum_ / static_cast<double>(stats_.merges);

  // Fetch the fresh global for the next local round. If the fetch faults
  // the merge above stands; the client trains on from its stale model and
  // its staleness keeps growing until a fetch succeeds.
  try {
    const auto delivered = transport_->transfer(
        Direction::kDownlink, Float32Codec::instance().encode(global_));
    clients_[client]->receive_global(
        Float32Codec::instance().decode(delivered));
    base_version_[client] = stats_.server_version;
  } catch (const TransportError&) {
    ++stats_.dropouts;
  } catch (const std::invalid_argument&) {
    ++stats_.dropouts;
  }
}

void AsyncFederation::run_ticks(std::size_t n) {
  FEDPOWER_EXPECTS(!global_.empty());
  for (std::size_t t = 0; t < n; ++t) {
    ++tick_;
    std::vector<std::size_t> due;
    for (std::size_t c = 0; c < clients_.size(); ++c)
      if (tick_ % periods_[c] == 0) due.push_back(c);
    if (due.empty()) continue;
    // Train every due client concurrently (barrier), then merge serially
    // in index order. Each client trains on its last-fetched model, not on
    // its peers' same-tick merges, so this matches the serial schedule bit
    // for bit while the training — the expensive part — overlaps.
    util::for_each_index(executor_, due.size(), [&](std::size_t k) {
      clients_[due[k]]->run_local_round();
    });
    for (const std::size_t c : due) finish_round(c);
  }
}

}  // namespace fedpower::fed
