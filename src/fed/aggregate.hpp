// Model aggregation rules. The paper uses unweighted federated averaging
// (Algorithm 2, line 8: theta_{r+1} = 1/N * sum theta_r^n); a
// sample-count-weighted variant (the original FedAvg of McMahan et al.) is
// provided for the ablation bench.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "util/executor.hpp"

namespace fedpower::fed {

enum class AggregationMode {
  kUnweightedMean,  ///< every client counts equally (the paper's choice)
  kSampleWeighted,  ///< clients weighted by local sample counts
  kCoordinateMedian,///< per-coordinate median (Byzantine-robust)
  kTrimmedMean,     ///< per-coordinate 20%-trimmed mean (Byzantine-robust)
  kKrum,            ///< Krum: the single most-central model (Byzantine-robust)
  kMultiKrum,       ///< multi-Krum: mean of the most-central models
};

/// Element-wise mean of equally sized parameter vectors.
/// Requires at least one vector; all must have the same length.
[[nodiscard]] std::vector<double> average_unweighted(
    const std::vector<std::vector<double>>& models);

/// Element-wise weighted mean; weights must be non-negative with a positive
/// sum and match the number of models.
[[nodiscard]] std::vector<double> average_weighted(
    const std::vector<std::vector<double>>& models,
    std::span<const double> weights);

/// Per-coordinate median. Robust to up to floor((N-1)/2) arbitrary
/// (Byzantine) client models — the paper's §I threat model includes
/// malicious participants, and plain averaging lets a single one steer the
/// global policy anywhere.
[[nodiscard]] std::vector<double> aggregate_median(
    const std::vector<std::vector<double>>& models);

/// Per-coordinate trimmed mean: drops the trim_count smallest and largest
/// values in every coordinate before averaging. A trim_count that would
/// consume the whole survivor set (2 * trim_count >= N — dropouts can
/// shrink N below what the caller planned for) is clamped to the largest
/// valid value, floor((N-1)/2), instead of aborting the round; use
/// clamp_trim_count to observe the clamp.
[[nodiscard]] std::vector<double> aggregate_trimmed_mean(
    const std::vector<std::vector<double>>& models, std::size_t trim_count);

/// The trim count aggregate_trimmed_mean will actually use for N models:
/// min(trim_count, floor((N-1)/2)).
[[nodiscard]] std::size_t clamp_trim_count(std::size_t trim_count,
                                           std::size_t model_count) noexcept;

/// Krum (Blanchard et al., NeurIPS 2017): scores every model by the sum of
/// its squared distances to its N - byzantine_count - 2 nearest peers and
/// selects the select_count best-scoring models (ties broken by model
/// index), averaging them in model-index order. select_count = 1 is plain
/// Krum; multi-Krum uses select_count = N - byzantine_count - 2.
/// byzantine_count is clamped so at least one honest neighbour remains
/// (f <= N - 3; 0 below N = 3), select_count to [1, N]. Distances and the
/// final average are accumulated in model order — a pairwise tree would
/// change the FP summation order and break the serial/parallel
/// bit-identity contract (DESIGN.md §7).
[[nodiscard]] std::vector<double> aggregate_krum(
    const std::vector<std::vector<double>>& models,
    std::size_t byzantine_count, std::size_t select_count = 1);

// --- parallel reduction path ----------------------------------------------
//
// Every rule above is per-coordinate independent, so large aggregations
// shard the coordinate range across an executor while each coordinate keeps
// accumulating over the models in index order. That choice is deliberate:
// sharding the *model* dimension (a pairwise tree over clients) would
// change the floating-point summation order and break the bit-exactness
// guarantee between serial and parallel runs (DESIGN.md §7). Coordinate
// shards are disjoint, so any thread count — including the serial fallback
// when the executor is empty or the problem is small — produces identical
// bits.

/// Coordinate count × model count below which the parallel overloads run
/// serially (sharding overhead beats the win on small aggregations).
inline constexpr std::size_t kParallelAggregationMinWork = 16384;

[[nodiscard]] std::vector<double> average_unweighted(
    const std::vector<std::vector<double>>& models,
    const util::ParallelFor& parallel_for);

[[nodiscard]] std::vector<double> average_weighted(
    const std::vector<std::vector<double>>& models,
    std::span<const double> weights, const util::ParallelFor& parallel_for);

[[nodiscard]] std::vector<double> aggregate_median(
    const std::vector<std::vector<double>>& models,
    const util::ParallelFor& parallel_for);

[[nodiscard]] std::vector<double> aggregate_trimmed_mean(
    const std::vector<std::vector<double>>& models, std::size_t trim_count,
    const util::ParallelFor& parallel_for);

/// Parallel Krum: pairwise distance rows are sharded across the executor
/// (each row's coordinate loop keeps the serial accumulation order, so any
/// thread count produces identical bits); scoring and selection stay
/// serial in model order.
[[nodiscard]] std::vector<double> aggregate_krum(
    const std::vector<std::vector<double>>& models,
    std::size_t byzantine_count, std::size_t select_count,
    const util::ParallelFor& parallel_for);

/// Side information from aggregate_with_mode that round bookkeeping wants
/// (only the trimmed-mean mode fills it in).
struct AggregateOutcome {
  std::size_t trim_count = 0;
  bool trim_clamped = false;
};

/// One aggregation step under `mode`, including the per-mode parameter
/// policy (default trim budget, Krum's byzantine/select counts). Both the
/// synchronous server (FederatedAveraging) and the sharded serve pipeline's
/// deterministic commit call this, which is what makes their results
/// bit-identical by construction: identical inputs in identical order flow
/// through the exact same floating-point operations.
///
/// `trim_override` replaces the default trimmed-mean budget when set
/// (ignored by the other modes). `weights` is consulted only by
/// kSampleWeighted and must then match `models` in length.
[[nodiscard]] std::vector<double> aggregate_with_mode(
    AggregationMode mode, const std::vector<std::vector<double>>& models,
    std::span<const double> weights,
    const std::optional<std::size_t>& trim_override,
    const util::ParallelFor& parallel_for, AggregateOutcome& outcome);

}  // namespace fedpower::fed
