// Deterministic fault injection for any Transport.
//
// Real edge fleets lose devices to network faults constantly; reproducing
// that against a kernel TCP stack is slow and nondeterministic. This
// decorator wraps any Transport and injects the four fault classes the
// federation layer must survive — dropped transfers, delayed delivery,
// truncated payloads and multi-transfer disconnect outages — from a seeded
// RNG, so a dropout experiment is bit-for-bit reproducible: the same seed
// produces the same fault schedule, hence the same set of dropped clients.
//
// Exactly one uniform draw is consumed per transfer regardless of the
// outcome, which keeps the schedule a pure function of (seed, transfer
// index) — faults never perturb later draws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "fed/transport.hpp"
#include "util/rng.hpp"

namespace fedpower::fed {

struct FaultInjectionConfig {
  /// Probability the transfer is lost outright (throws TransportError).
  double drop_probability = 0.0;
  /// Probability the transfer succeeds but arrives late (adds
  /// injected_delay_s to the injected-latency account).
  double delay_probability = 0.0;
  /// Probability the delivered payload is cut to half its bytes; the
  /// receiving codec detects the damage and the federation drops the
  /// client for the round.
  double truncate_probability = 0.0;
  /// Probability the connection dies: this transfer and the next
  /// outage_transfers transfers all fail before the line heals.
  double disconnect_probability = 0.0;
  /// Latency added by each delayed transfer.
  double injected_delay_s = 0.05;
  /// Failed transfers following a disconnect before auto-reconnect.
  std::size_t outage_transfers = 2;
  std::uint64_t seed = 0;
};

struct FaultInjectionStats {
  std::size_t attempted = 0;       ///< transfers requested by the caller
  std::size_t delivered = 0;       ///< transfers that reached the peer intact
  std::size_t drops = 0;           ///< injected one-shot losses
  std::size_t delays = 0;          ///< injected late deliveries
  std::size_t truncations = 0;     ///< injected damaged payloads
  std::size_t disconnects = 0;     ///< injected connection deaths
  std::size_t outage_failures = 0; ///< transfers failed while the line was down
  double injected_delay_s = 0.0;   ///< total latency added by delays
};

/// Decorator that injects seeded faults in front of any Transport.
class FaultInjectingTransport final : public Transport {
 public:
  /// Inner transport is non-owning and must outlive the decorator.
  /// Probabilities must each be in [0, 1] and sum to at most 1.
  FaultInjectingTransport(Transport* inner, FaultInjectionConfig config);

  std::vector<std::uint8_t> transfer(
      Direction direction, std::vector<std::uint8_t> payload) override;

  /// Traffic stats of the inner transport (faulted transfers never reach
  /// it, so these count only real deliveries).
  const TrafficStats& stats() const noexcept override {
    return inner_->stats();
  }

  /// Inner latency plus the delay injected by this decorator, so round
  /// deadlines see delay faults as the lateness they model.
  double cumulative_latency_s() const noexcept override {
    return inner_->cumulative_latency_s() + fault_stats_.injected_delay_s;
  }

  const FaultInjectionStats& fault_stats() const noexcept {
    return fault_stats_;
  }

  /// False while a disconnect outage is in progress.
  bool connected() const noexcept { return outage_remaining_ == 0; }

  /// Serializes the fault schedule's position — RNG stream, in-progress
  /// outage and accumulated stats — under tag FINJ, so a resumed run
  /// injects exactly the faults the uninterrupted run would have.
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

 private:
  Transport* inner_;            // lint: ckpt-skip(non-owning wrapped transport; re-wired on resume)
  FaultInjectionConfig config_;  // lint: ckpt-skip(construction config, fixed for the run)
  util::Rng rng_;
  FaultInjectionStats fault_stats_;
  std::size_t outage_remaining_ = 0;
};

}  // namespace fedpower::fed
