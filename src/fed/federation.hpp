// Synchronous federated-averaging orchestration (paper Algorithm 2).
//
// Each round: the server broadcasts the global model to all clients; every
// client trains locally (T environment steps in the power-control setting);
// the clients upload their local models; the server averages them into the
// next global model. Models cross the transport as float32 payloads
// (nn/serialize.hpp), so the traffic statistics reflect real wire sizes.
//
// Privacy property enforced by construction: the only data type that can
// cross the Transport is an encoded parameter vector — replay-buffer
// contents (raw performance counters and power traces) have no path off
// the device.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fed/aggregate.hpp"
#include "fed/codec.hpp"
#include "fed/transport.hpp"
#include "util/rng.hpp"

namespace fedpower::fed {

/// A device participating in federated optimization.
class FederatedClient {
 public:
  virtual ~FederatedClient() = default;

  /// Installs the global model received from the server.
  virtual void receive_global(std::span<const double> params) = 0;

  /// Current local model parameters.
  virtual std::vector<double> local_parameters() const = 0;

  /// Performs one round of local optimization (Algorithm 2 line 5).
  virtual void run_local_round() = 0;

  /// Local training-set size for sample-weighted aggregation; the default
  /// weights all clients equally.
  virtual std::size_t local_sample_count() const { return 1; }
};

struct RoundResult {
  std::size_t round = 0;
  std::size_t uplink_bytes = 0;
  std::size_t downlink_bytes = 0;
  /// Clients selected this round (all of them unless partial participation
  /// is configured).
  std::vector<std::size_t> participants;
};

class FederatedAveraging {
 public:
  /// Clients, transport and codec are non-owning and must outlive the
  /// federation. The default codec is the paper's float32 wire format.
  FederatedAveraging(std::vector<FederatedClient*> clients,
                     Transport* transport,
                     AggregationMode mode = AggregationMode::kUnweightedMean,
                     const ModelCodec* codec = nullptr);

  /// Sets the initial global model theta_1 (Algorithm 2 line 1).
  void initialize(std::vector<double> global);

  /// Enables partial participation: each round, ceil(fraction * N) clients
  /// (at least one) are drawn uniformly without replacement; only they
  /// receive the broadcast, train and upload. The paper's setting is full
  /// participation (fraction = 1, the default).
  void set_participation(double fraction, std::uint64_t seed);

  /// Runs one full round: broadcast, parallel local training, aggregation.
  RoundResult run_round();

  /// Runs the given number of rounds back to back.
  void run(std::size_t rounds);

  const std::vector<double>& global_model() const noexcept { return global_; }
  std::size_t rounds_completed() const noexcept { return rounds_completed_; }
  std::size_t client_count() const noexcept { return clients_.size(); }
  const ModelCodec& codec() const noexcept { return *codec_; }

 private:
  std::vector<std::size_t> draw_participants();

  std::vector<FederatedClient*> clients_;
  Transport* transport_;
  AggregationMode mode_;
  const ModelCodec* codec_;
  std::vector<double> global_;
  std::size_t rounds_completed_ = 0;
  double participation_ = 1.0;
  util::Rng participation_rng_{0};
};

}  // namespace fedpower::fed
