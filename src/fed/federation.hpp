// Synchronous federated-averaging orchestration (paper Algorithm 2).
//
// Each round: the server broadcasts the global model to all clients; every
// client trains locally (T environment steps in the power-control setting);
// the clients upload their local models; the server averages them into the
// next global model. Models cross the transport as float32 payloads
// (nn/serialize.hpp), so the traffic statistics reflect real wire sizes.
//
// Privacy property enforced by construction: the only data type that can
// cross the Transport is an encoded parameter vector — replay-buffer
// contents (raw performance counters and power traces) have no path off
// the device.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "fed/aggregate.hpp"
#include "fed/codec.hpp"
#include "fed/defense.hpp"
#include "fed/transport.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace fedpower::fed {

/// A device participating in federated optimization.
class FederatedClient {
 public:
  virtual ~FederatedClient() = default;

  /// Installs the global model received from the server.
  virtual void receive_global(std::span<const double> params) = 0;

  /// Current local model parameters.
  virtual std::vector<double> local_parameters() const = 0;

  /// Performs one round of local optimization (Algorithm 2 line 5).
  virtual void run_local_round() = 0;

  /// Local training-set size for sample-weighted aggregation; the default
  /// weights all clients equally.
  virtual std::size_t local_sample_count() const { return 1; }
};

/// Per-round client sampling (McMahan-style C-fraction). The paper's
/// setting is full participation (fraction = 1); fleets beyond a few dozen
/// devices sample ceil(fraction * eligible) clients per round instead, so
/// per-round cost scales with the sample, not the fleet.
///
/// Semantics:
///   * fraction = 1 selects every client and consumes no randomness, so
///     full-participation runs keep their historic RNG stream byte for
///     byte.
///   * fraction < 1 draws uniformly without replacement from the ELIGIBLE
///     clients — when the defense pipeline is armed and quarantine_aware
///     is set (the default), quarantined clients are excluded from the
///     draw so the round's C-fraction is spent entirely on clients whose
///     uploads can actually reach the aggregate. (The pre-fix behaviour
///     drew from the full fleet; rounds that happened to select
///     quarantined clients silently ran below the configured fraction and
///     could starve the quorum.)
///   * Quarantined clients still participate every sampled round as
///     probation riders: they receive the broadcast and their uploads are
///     screened (never aggregated), so the defense pipeline's
///     consecutive-clean-upload re-admission keeps progressing even at
///     small C. They are listed in RoundResult::participants and
///     RoundResult::quarantined exactly as under full participation.
///   * min_clients floors the eligible draw: small fleets (or tiny
///     fractions) still field at least min(min_clients, eligible) clients.
///
/// The draw is deterministic from `seed`: the participation stream lives
/// in FederatedAveraging::save_state, so a resumed run selects the same
/// clients the uninterrupted run would have. The config itself is
/// configuration, not state — a resuming federation must be handed the
/// same SamplingConfig, exactly like DefenseConfig.
struct SamplingConfig {
  double fraction = 1.0;        ///< C: fraction of eligible clients per round
  std::size_t min_clients = 1;  ///< floor on the per-round eligible draw
  std::uint64_t seed = 0;       ///< participation stream seed
  bool quarantine_aware = true; ///< skip quarantined clients in the draw
};

struct RoundResult {
  std::size_t round = 0;
  std::size_t uplink_bytes = 0;
  std::size_t downlink_bytes = 0;
  /// Clients selected this round (all of them unless partial participation
  /// is configured).
  std::vector<std::size_t> participants;
  /// Selected clients lost to transport faults (connection errors or
  /// corrupt payloads); always a subset of participants, sorted.
  std::vector<std::size_t> dropped;
  /// Selected clients whose upload decoded cleanly but was screened out by
  /// the server (non-finite parameters — a diverged or malicious model);
  /// disjoint from dropped, sorted.
  std::vector<std::size_t> rejected;
  /// Selected clients whose finite upload failed the defense pipeline's
  /// norm or cosine screen this round (defense enabled only); sorted.
  std::vector<std::size_t> screened;
  /// Selected clients excluded from aggregation because they entered the
  /// round quarantined (they still received the broadcast and their upload
  /// was screened for probation); sorted.
  std::vector<std::size_t> quarantined;
  /// Quarantined clients re-admitted at the end of this round (their models
  /// rejoin the aggregate from the next round on); sorted.
  std::vector<std::size_t> readmitted;
  /// Uploads admitted after defense norm clipping.
  std::size_t clipped = 0;
  /// Trim count the trimmed-mean aggregation actually used this round.
  std::size_t trim_count = 0;
  /// True when dropouts shrank the survivor set enough that the requested
  /// trim count had to be clamped (see aggregate_trimmed_mean).
  bool trim_clamped = false;
  /// Transport-level reconnect/retry attempts observed during the round.
  std::size_t transport_retries = 0;
  /// Participants demoted to dropouts by the per-round latency deadline
  /// (set_round_deadline); always a subset of dropped, sorted. A straggler
  /// counts against the quorum exactly like a transport fault but never
  /// blocks the round, and its upload is discarded before any screening so
  /// an honest-but-slow client pays no reputation.
  std::vector<std::size_t> stragglers;

  /// Clients whose local model made it into the aggregate: the participants
  /// minus the union of dropped/rejected/screened/quarantined. A client
  /// listed in several exclusion categories is subtracted exactly once
  /// (naively summing the lists double-counts and underflows).
  std::size_t effective_clients() const noexcept;

  /// Legacy name for effective_clients().
  std::size_t survivors() const noexcept { return effective_clients(); }
};

/// Thrown by run_round when fewer clients than the configured quorum
/// survive the round's transfers. The global model and round counter are
/// left unchanged, so the caller can retry the round or abandon it.
class QuorumError final : public std::runtime_error {
 public:
  QuorumError(std::size_t survivors, std::size_t required)
      : std::runtime_error("federated round aborted: " +
                           std::to_string(survivors) +
                           " survivor(s), quorum requires " +
                           std::to_string(required)),
        survivors_(survivors),
        required_(required) {}

  std::size_t survivors() const noexcept { return survivors_; }
  std::size_t required() const noexcept { return required_; }

 private:
  std::size_t survivors_;
  std::size_t required_;
};

class FederatedAveraging {
 public:
  /// Clients, transport and codec are non-owning and must outlive the
  /// federation. The default codec is the paper's float32 wire format.
  FederatedAveraging(std::vector<FederatedClient*> clients,
                     Transport* transport,
                     AggregationMode mode = AggregationMode::kUnweightedMean,
                     const ModelCodec* codec = nullptr);

  /// Sets the initial global model theta_1 (Algorithm 2 line 1).
  void initialize(std::vector<double> global);

  /// Configures per-round client sampling (see SamplingConfig). Resets the
  /// participation stream to config.seed; call before the first round (or
  /// restore_state, which overrides the stream position).
  void set_sampling(const SamplingConfig& config);

  /// The active sampling configuration (full participation by default).
  const SamplingConfig& sampling() const noexcept { return sampling_; }

  /// Legacy entry point: set_sampling with the given fraction/seed and the
  /// default floor (1) and quarantine awareness.
  void set_participation(double fraction, std::uint64_t seed);

  /// Minimum number of clients whose uploads must survive the round's
  /// transfers; below it run_round throws QuorumError and leaves the
  /// global model and round counter untouched. Default 1: any survivor
  /// lets FedAvg proceed with partial participation.
  ///
  /// Quorum semantics under partial participation: the requirement is
  /// checked against THIS round's aggregation-eligible participants (the
  /// drawn clients minus probation riders), never against the full fleet —
  /// a round that samples fewer clients than min_survivors demands only
  /// that every sampled client survives. (The pre-fix behaviour compared
  /// against the absolute count, so small-C rounds threw QuorumError
  /// spuriously even with zero faults.) At least one upload must always
  /// survive: a round whose every participant is quarantined, dropped or
  /// rejected still aborts.
  void set_quorum(std::size_t min_survivors);

  /// Routes client's transfers through its own transport (e.g. one TCP
  /// connection per device) instead of the shared one. Non-owning.
  void set_client_transport(std::size_t client, Transport* transport);

  /// Per-round transport-latency budget per client, in simulated seconds;
  /// 0 disables (the default). A participant whose downlink + uplink
  /// latency this round (Transport::cumulative_latency_s deltas, which
  /// include fault-injected delays) exceeds the budget is demoted to a
  /// dropout (RoundResult::stragglers ⊆ dropped): its upload is discarded
  /// BEFORE decoding or defense screening, so stragglers count against the
  /// quorum without blocking the round and never feed reputation.
  void set_round_deadline(double seconds);

  /// Arms the server-side Byzantine defense pipeline (defense.hpp): norm
  /// clipping and screening, cosine screening against the previous global
  /// model, and reputation-based quarantine. No-op when config.enabled is
  /// false. Must be called before the first round; the pipeline's state is
  /// then part of save_state/restore_state.
  void enable_defense(const DefenseConfig& config);

  /// The armed defense pipeline, or nullptr when defense is disabled.
  const DefensePipeline* defense() const noexcept {
    return defense_ ? &*defense_ : nullptr;
  }

  /// Overrides the trimmed-mean trim count (default: ~20% of the round's
  /// survivors, at least 1 from three survivors up). The effective value is
  /// still clamped per round to what the survivor set supports
  /// (clamp_trim_count); RoundResult::trim_clamped records when that
  /// happened.
  void set_trim_count(std::size_t trim_count);

  /// Runs the clients' local training through the given executor (e.g. a
  /// runtime::ThreadPool), one client = one work item, with a barrier
  /// before the uplink phase; large aggregations also shard their
  /// coordinate reduction across it. Clients must not share mutable state
  /// for this to be legal — PowerController fleets satisfy that (each owns
  /// its processor, workload and split RNG), which also makes the result
  /// bit-identical to the serial default (empty executor). Transfers always
  /// stay serial in client-index order, so transport fault injection and
  /// traffic accounting are schedule-independent.
  void set_local_executor(util::ParallelFor executor);

  /// Runs one full round: broadcast, parallel local training, aggregation.
  /// A client whose downlink or uplink transfer throws TransportError (or
  /// delivers a payload the codec rejects) is recorded in
  /// RoundResult::dropped and excluded from the aggregate; an upload that
  /// decodes to the wrong shape or contains non-finite values is screened
  /// out server-side (RoundResult::rejected) exactly like a dropout. The
  /// round completes with the survivors as long as the quorum holds.
  RoundResult run_round();

  /// Runs the given number of rounds back to back.
  void run(std::size_t rounds);

  const std::vector<double>& global_model() const noexcept { return global_; }
  std::size_t rounds_completed() const noexcept { return rounds_completed_; }
  std::size_t client_count() const noexcept { return clients_.size(); }
  const ModelCodec& codec() const noexcept { return *codec_; }

  /// Serializes the server's round state: global model, round counter and
  /// the participation RNG stream (so a resumed run selects the same
  /// clients the uninterrupted run would have). When the defense pipeline
  /// is armed its reputation/quarantine state follows (tag DFNS); snapshots
  /// and federations must agree on whether defense is enabled.
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

 private:
  std::vector<std::size_t> draw_participants();
  Transport& transport_for(std::size_t client) noexcept;
  std::size_t total_transport_retries() const;

  std::vector<FederatedClient*> clients_;
  Transport* transport_;  // lint: ckpt-skip(non-owning wiring; re-attached before resuming)
  /// Per-client overrides. lint: ckpt-skip(non-owning wiring; re-attached before resuming)
  std::vector<Transport*> client_transports_;
  /// Distinct transports (shared + overrides), sorted by address; rebuilt
  /// lazily after set_client_transport so per-round retry accounting is one
  /// linear pass instead of the historic O(n^2) pointer scan.
  // lint: ckpt-skip(lazy cache rebuilt from the transports on demand)
  mutable std::vector<const Transport*> transport_dedup_;
  mutable bool transport_dedup_stale_ = true;  // lint: ckpt-skip(lazy cache flag; stale default makes resume rebuild)
  AggregationMode mode_;     // lint: ckpt-skip(construction config, fixed for the run)
  const ModelCodec* codec_;  // lint: ckpt-skip(non-owning strategy object; re-wired on resume)
  /// Empty = serial local rounds. lint: ckpt-skip(thread pool handle; rounds are width-invariant)
  util::ParallelFor executor_;
  std::vector<double> global_;
  std::size_t rounds_completed_ = 0;
  SamplingConfig sampling_{};  // lint: ckpt-skip(construction config, fixed for the run)
  std::size_t quorum_ = 1;     // lint: ckpt-skip(construction config, fixed for the run)
  double deadline_s_ = 0.0;    // lint: ckpt-skip(construction config, fixed for the run)
  util::Rng participation_rng_{0};
  std::optional<DefensePipeline> defense_;
  bool trim_count_override_ = false;  // lint: ckpt-skip(construction config, fixed for the run)
  std::size_t trim_count_ = 0;        // lint: ckpt-skip(construction config, fixed for the run)
};

}  // namespace fedpower::fed
