// Secure aggregation via pairwise additive masking (Bonawitz et al.,
// CCS'17, simplified).
//
// The paper's privacy argument is that only model weights leave a device.
// Secure aggregation strengthens it: the server learns *only the sum* of
// the client models, never an individual one. Every ordered client pair
// (i, j), i < j, derives a shared mask from a pairwise secret; i adds the
// mask to its payload and j subtracts it, so the masks cancel exactly in
// the sum. Cancellation must be exact, hence arithmetic is fixed-point
// modulo 2^64, not floating point.
//
// Simplifications vs. the full protocol: pairwise secrets are modeled as a
// pre-shared round secret (no Diffie-Hellman key agreement), and dropout
// recovery (secret sharing of masks) is not implemented — all clients must
// deliver, matching the paper's synchronous full-participation setting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace fedpower::fed {

struct SecureAggConfig {
  /// Parameters are clipped to [-clip, clip] before fixed-point encoding.
  double clip = 8.0;
  /// Fixed-point resolution (quantization step).
  double resolution = 1e-6;
};

class SecureAggregationSession {
 public:
  /// One session per round: client_count participants, model dimension,
  /// and the round's shared secret (models the pre-agreed pairwise keys).
  SecureAggregationSession(std::size_t client_count, std::size_t dimension,
                           std::uint64_t round_secret,
                           SecureAggConfig config = {});

  /// Client-side: fixed-point encoding of params plus this client's
  /// pairwise masks. The result is indistinguishable from noise without
  /// the other clients' payloads.
  std::vector<std::uint64_t> masked_payload(
      std::size_t client, std::span<const double> params) const;

  /// Server-side: element-wise *mean* of all client parameter vectors.
  /// Requires exactly one payload per client (dropout unsupported);
  /// throws std::invalid_argument otherwise.
  std::vector<double> unmask_mean(
      const std::vector<std::vector<std::uint64_t>>& payloads) const;

  std::size_t client_count() const noexcept { return client_count_; }
  std::size_t dimension() const noexcept { return dimension_; }
  const SecureAggConfig& config() const noexcept { return config_; }

 private:
  /// Mask shared by the pair (a, b), a < b; added by a, subtracted by b.
  std::vector<std::uint64_t> pair_mask(std::size_t a, std::size_t b) const;

  std::size_t client_count_;
  std::size_t dimension_;
  std::uint64_t round_secret_;
  SecureAggConfig config_;
};

}  // namespace fedpower::fed
