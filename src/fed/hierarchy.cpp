#include "fed/hierarchy.hpp"

#include <algorithm>
#include <utility>

#include "ckpt/state_io.hpp"
#include "util/assert.hpp"

namespace fedpower::fed {

EdgeAggregator::EdgeAggregator(std::size_t shard, std::size_t first_client,
                               std::vector<FederatedClient*> clients,
                               Transport* transport, AggregationMode mode,
                               const ModelCodec* codec)
    : shard_(shard),
      first_(first_client),
      federation_(std::make_unique<FederatedAveraging>(std::move(clients),
                                                       transport, mode,
                                                       codec)) {}

HierarchicalFederation::HierarchicalFederation(
    std::vector<FederatedClient*> clients, Transport* transport,
    std::size_t shard_count, AggregationMode mode, const ModelCodec* codec)
    : codec_(codec != nullptr ? codec : &Float32Codec::instance()),
      client_count_(clients.size()) {
  FEDPOWER_EXPECTS(shard_count >= 1 && shard_count <= clients.size());
  // Contiguous balanced shards: sizes differ by at most one, the first
  // (clients % shards) shards take the extra client. Static assignment is
  // deliberate — a client's reputation history lives in its shard's
  // DefensePipeline, so clients must not migrate between shards mid-run.
  const std::size_t base = clients.size() / shard_count;
  const std::size_t extra = clients.size() % shard_count;
  std::size_t first = 0;
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t size = base + (s < extra ? 1 : 0);
    std::vector<FederatedClient*> shard_clients(
        clients.begin() + static_cast<std::ptrdiff_t>(first),
        clients.begin() + static_cast<std::ptrdiff_t>(first + size));
    shards_.push_back(std::make_unique<EdgeAggregator>(
        s, first, std::move(shard_clients), transport, mode, codec_));
    first += size;
  }
}

void HierarchicalFederation::initialize(std::vector<double> global) {
  FEDPOWER_EXPECTS(!global.empty());
  global_ = std::move(global);
}

void HierarchicalFederation::set_sampling(const SamplingConfig& config) {
  for (auto& shard : shards_) {
    SamplingConfig shard_config = config;
    if (shard->shard() != 0) {
      // Independent per-shard participation streams; shard 0 keeps the
      // seed verbatim so one shard reproduces the flat federation exactly.
      std::uint64_t state =
          config.seed ^ (0x9e3779b97f4a7c15ULL *
                         static_cast<std::uint64_t>(shard->shard()));
      shard_config.seed = util::splitmix64(state);
    }
    shard->federation().set_sampling(shard_config);
  }
}

void HierarchicalFederation::set_quorum(std::size_t min_survivors) {
  FEDPOWER_EXPECTS(min_survivors >= 1);
  for (auto& shard : shards_)
    shard->federation().set_quorum(
        std::min(min_survivors, shard->client_count()));
}

void HierarchicalFederation::set_min_contributing_shards(
    std::size_t min_shards) {
  FEDPOWER_EXPECTS(min_shards >= 1 && min_shards <= shards_.size());
  min_contributing_shards_ = min_shards;
}

void HierarchicalFederation::enable_defense(const DefenseConfig& config) {
  for (auto& shard : shards_) shard->federation().enable_defense(config);
}

void HierarchicalFederation::set_trim_count(std::size_t trim_count) {
  for (auto& shard : shards_) shard->federation().set_trim_count(trim_count);
}

void HierarchicalFederation::set_local_executor(util::ParallelFor executor) {
  for (auto& shard : shards_) shard->federation().set_local_executor(executor);
  executor_ = std::move(executor);
}

std::size_t HierarchicalFederation::shard_of(std::size_t client) const {
  FEDPOWER_EXPECTS(client < client_count_);
  for (const auto& shard : shards_)
    if (client < shard->first_client() + shard->client_count())
      return shard->shard();
  return shards_.size() - 1;  // unreachable given the EXPECTS above
}

void HierarchicalFederation::set_client_transport(std::size_t client,
                                                  Transport* transport) {
  const std::size_t s = shard_of(client);
  shards_[s]->federation().set_client_transport(
      client - shards_[s]->first_client(), transport);
}

void HierarchicalFederation::set_edge_transport(std::size_t shard,
                                                Transport* transport) {
  FEDPOWER_EXPECTS(shard < shards_.size());
  shards_[shard]->set_edge_transport(transport);
}

HierarchicalRoundResult HierarchicalFederation::run_round() {
  FEDPOWER_EXPECTS(!global_.empty());
  HierarchicalRoundResult result;
  result.round = rounds_completed_ + 1;
  result.shards.reserve(shards_.size());

  // The edge wire image is shared by every shard downlink; the model
  // itself crosses in process at full precision (see file header).
  const std::vector<std::uint8_t> wire = codec_->encode(global_);
  std::vector<std::vector<double>> shard_models;
  std::vector<double> weights;
  for (auto& shard : shards_) {
    ShardRoundOutcome outcome;
    outcome.shard = shard->shard();

    // Edge downlink: server -> edge aggregator. A faulted (or corrupted)
    // transfer leaves the shard on the stale model it last received; the
    // shard round still runs, exactly as an unreachable region keeps
    // training on what it has.
    bool fresh = true;
    if (Transport* edge = shard->edge_transport()) {
      try {
        const auto delivered = edge->transfer(Direction::kDownlink, wire);
        codec_->decode(delivered);  // corruption check only; value unused
        result.downlink_bytes += delivered.size();
      } catch (const TransportError&) {
        fresh = false;
      } catch (const std::invalid_argument&) {
        fresh = false;
      }
      outcome.downlink_stale = !fresh;
    }
    if (fresh) shard->federation().initialize(global_);

    try {
      outcome.result = shard->federation().run_round();
    } catch (const QuorumError&) {
      outcome.quorum_failed = true;
    }

    if (outcome.result) {
      // Edge uplink: one model per shard per round, whatever the shard
      // size — this is the two-tier topology's entire bandwidth win.
      bool delivered_ok = true;
      if (Transport* edge = shard->edge_transport()) {
        try {
          const auto delivered = edge->transfer(
              Direction::kUplink,
              codec_->encode(shard->federation().global_model()));
          codec_->decode(delivered);
          result.uplink_bytes += delivered.size();
        } catch (const TransportError&) {
          delivered_ok = false;
        } catch (const std::invalid_argument&) {
          delivered_ok = false;
        }
        outcome.uplink_dropped = !delivered_ok;
      }
      if (delivered_ok) {
        outcome.contributed = true;
        shard_models.push_back(shard->federation().global_model());
        weights.push_back(static_cast<double>(
            outcome.result->effective_clients()));
      }
    }
    result.shards.push_back(std::move(outcome));
  }

  result.contributing_shards = shard_models.size();
  const std::size_t required = std::max<std::size_t>(
      1, std::min(min_contributing_shards_, shards_.size()));
  if (shard_models.size() < required)
    throw QuorumError(shard_models.size(), required);

  // Weighted by aggregated upload counts, accumulated in shard order. A
  // single contributing shard adopts that model by copy: a weighted
  // average of one is not guaranteed bit-exact (w*x/w), and the
  // single-shard topology must reproduce the flat run to the bit.
  if (shard_models.size() == 1) {
    global_ = std::move(shard_models.front());
  } else {
    global_ = average_weighted(shard_models, weights, executor_);
  }
  ++rounds_completed_;
  return result;
}

void HierarchicalFederation::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

namespace {
constexpr ckpt::Tag kHierTag{'H', 'I', 'E', 'R'};
}  // namespace

void HierarchicalFederation::save_state(ckpt::Writer& out) const {
  write_tag(out, kHierTag);
  out.u64(shards_.size());
  out.u64(rounds_completed_);
  out.vec_f64(global_);
  for (const auto& shard : shards_) shard->federation().save_state(out);
}

void HierarchicalFederation::restore_state(ckpt::Reader& in) {
  expect_tag(in, kHierTag, "hierarchical federation server");
  const std::uint64_t shard_count = in.u64();
  if (shard_count != shards_.size())
    throw ckpt::StateMismatchError(
        "hierarchical snapshot was taken with " + std::to_string(shard_count) +
        " shard(s), this federation has " + std::to_string(shards_.size()));
  rounds_completed_ = in.u64();
  global_ = in.vec_f64();
  for (auto& shard : shards_) shard->federation().restore_state(in);
}

}  // namespace fedpower::fed
