// Transport abstraction between federated clients and the aggregation
// server. The library ships an in-process implementation that moves payload
// bytes, keeps per-direction traffic statistics (the paper reports 2.8 kB
// per transfer, §IV-C) and models transmission latency; a socket-based
// implementation would slot in behind the same interface without touching
// the aggregation logic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace fedpower::fed {

/// Connection-level delivery failure: peer closed, timeout, exhausted
/// reconnect attempts, or an injected fault. The federation layers catch
/// this per client and drop that client from the round; it must never kill
/// the process.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Direction {
  kUplink,    ///< client -> server (local model upload)
  kDownlink,  ///< server -> client (global model broadcast)
};

struct TrafficStats {
  std::size_t uplink_transfers = 0;
  std::size_t uplink_bytes = 0;
  std::size_t downlink_transfers = 0;
  std::size_t downlink_bytes = 0;
  /// Reconnect/retry attempts the transport made to deliver transfers
  /// (0 for transports that cannot fail).
  std::size_t retries = 0;
  double total_latency_s = 0.0;

  std::size_t total_bytes() const noexcept {
    return uplink_bytes + downlink_bytes;
  }
  std::size_t total_transfers() const noexcept {
    return uplink_transfers + downlink_transfers;
  }
  /// Mean payload size per transfer, in bytes.
  double mean_transfer_bytes() const noexcept {
    const std::size_t n = total_transfers();
    return n > 0 ? static_cast<double>(total_bytes()) /
                       static_cast<double>(n)
                 : 0.0;
  }
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers the payload in the given direction and returns it as received.
  virtual std::vector<std::uint8_t> transfer(
      Direction direction, std::vector<std::uint8_t> payload) = 0;

  virtual const TrafficStats& stats() const noexcept = 0;

  /// Total simulated latency this link has accumulated, in seconds.
  /// Decorators that add latency of their own (e.g. fault-injected delays)
  /// override this to include it, so per-round deadline accounting sees
  /// the latency a real client would: the federation measures the delta of
  /// this value around each transfer. Transfers are serial in client-index
  /// order, so the delta is exactly one client's share even on a shared
  /// link.
  virtual double cumulative_latency_s() const noexcept {
    return stats().total_latency_s;
  }
};

/// Lossless in-process delivery with traffic accounting and a linear
/// latency model (fixed per-message cost plus bytes / bandwidth).
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(double base_latency_s = 0.002,
                              double bandwidth_bytes_per_s = 1.25e6);

  std::vector<std::uint8_t> transfer(
      Direction direction, std::vector<std::uint8_t> payload) override;

  const TrafficStats& stats() const noexcept override { return stats_; }

  void reset_stats() noexcept { stats_ = TrafficStats{}; }

 private:
  double base_latency_s_;
  double bandwidth_bytes_per_s_;
  TrafficStats stats_;
};

}  // namespace fedpower::fed
