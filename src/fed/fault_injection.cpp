#include "fed/fault_injection.hpp"

#include "ckpt/state_io.hpp"
#include "util/assert.hpp"

namespace fedpower::fed {

namespace {

bool valid_probability(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

FaultInjectingTransport::FaultInjectingTransport(Transport* inner,
                                                 FaultInjectionConfig config)
    : inner_(inner), config_(config), rng_(config.seed) {
  FEDPOWER_EXPECTS(inner_ != nullptr);
  FEDPOWER_EXPECTS(valid_probability(config_.drop_probability));
  FEDPOWER_EXPECTS(valid_probability(config_.delay_probability));
  FEDPOWER_EXPECTS(valid_probability(config_.truncate_probability));
  FEDPOWER_EXPECTS(valid_probability(config_.disconnect_probability));
  FEDPOWER_EXPECTS(config_.drop_probability + config_.delay_probability +
                       config_.truncate_probability +
                       config_.disconnect_probability <=
                   1.0);
  FEDPOWER_EXPECTS(config_.injected_delay_s >= 0.0);
}

std::vector<std::uint8_t> FaultInjectingTransport::transfer(
    Direction direction, std::vector<std::uint8_t> payload) {
  ++fault_stats_.attempted;
  // One draw per transfer, consumed before any branching, so the fault
  // schedule depends only on (seed, transfer index).
  const double u = rng_.uniform();

  if (outage_remaining_ > 0) {
    --outage_remaining_;
    ++fault_stats_.outage_failures;
    throw TransportError("fault injection: line down");
  }

  double threshold = config_.drop_probability;
  if (u < threshold) {
    ++fault_stats_.drops;
    throw TransportError("fault injection: transfer dropped");
  }
  threshold += config_.disconnect_probability;
  if (u < threshold) {
    ++fault_stats_.disconnects;
    outage_remaining_ = config_.outage_transfers;
    throw TransportError("fault injection: peer disconnected");
  }
  threshold += config_.truncate_probability;
  if (u < threshold) {
    ++fault_stats_.truncations;
    std::vector<std::uint8_t> damaged =
        inner_->transfer(direction, std::move(payload));
    damaged.resize(damaged.size() / 2);
    return damaged;
  }
  threshold += config_.delay_probability;
  if (u < threshold) {
    ++fault_stats_.delays;
    fault_stats_.injected_delay_s += config_.injected_delay_s;
  }
  ++fault_stats_.delivered;
  return inner_->transfer(direction, std::move(payload));
}

namespace {
constexpr ckpt::Tag kFaultInjectionTag{'F', 'I', 'N', 'J'};
}  // namespace

void FaultInjectingTransport::save_state(ckpt::Writer& out) const {
  write_tag(out, kFaultInjectionTag);
  ckpt::save_rng(out, rng_);
  out.u64(outage_remaining_);
  out.u64(fault_stats_.attempted);
  out.u64(fault_stats_.delivered);
  out.u64(fault_stats_.drops);
  out.u64(fault_stats_.delays);
  out.u64(fault_stats_.truncations);
  out.u64(fault_stats_.disconnects);
  out.u64(fault_stats_.outage_failures);
  out.f64(fault_stats_.injected_delay_s);
}

void FaultInjectingTransport::restore_state(ckpt::Reader& in) {
  expect_tag(in, kFaultInjectionTag, "fault-injecting transport");
  ckpt::restore_rng(in, rng_);
  outage_remaining_ = in.u64();
  fault_stats_.attempted = in.u64();
  fault_stats_.delivered = in.u64();
  fault_stats_.drops = in.u64();
  fault_stats_.delays = in.u64();
  fault_stats_.truncations = in.u64();
  fault_stats_.disconnects = in.u64();
  fault_stats_.outage_failures = in.u64();
  fault_stats_.injected_delay_s = in.f64();
}

}  // namespace fedpower::fed
