// Client-side fault and attack models for robustness experiments
// (DESIGN.md §10).
//
// ByzantineClient wraps an honest FederatedClient and corrupts what the
// server sees, leaving the inner client's actual learning untouched — the
// attack lives purely in the uplink path, exactly where a compromised
// device (or a flaky serializer) would sit. The wrapper is deterministic:
// given the same inner client and round sequence it produces bit-identical
// uploads, so attacked runs stay reproducible and checkpointable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "fed/federation.hpp"

namespace fedpower::fed {

/// What a compromised client uploads instead of its honest local model.
enum class UploadAttack : std::uint8_t {
  kNone = 0,        ///< honest passthrough
  kSignFlip = 1,    ///< upload -|scale| * theta (gradient-reversal poison)
  kScale = 2,       ///< upload +|scale| * theta (norm-inflation poison)
  kStaleReplay = 3, ///< upload the model from `stale_rounds` rounds ago
};

/// Per-client attack plan. A default-constructed config is honest.
struct ClientFaultConfig {
  UploadAttack attack = UploadAttack::kNone;
  /// Magnitude for kSignFlip / kScale (the sign comes from the attack).
  double scale = 25.0;
  /// Replay lag for kStaleReplay; clamped to the history actually seen.
  std::size_t stale_rounds = 5;
  /// First local round (0-based) at which the attack activates; earlier
  /// rounds are honest — a sleeper that turns after trust is built.
  std::size_t start_round = 0;
};

/// FederatedClient decorator that applies a ClientFaultConfig to the
/// uplink. Non-owning: the inner client must outlive the wrapper.
class ByzantineClient final : public FederatedClient {
 public:
  ByzantineClient(FederatedClient* inner, ClientFaultConfig config);

  void receive_global(std::span<const double> params) override;
  std::vector<double> local_parameters() const override;
  void run_local_round() override;
  std::size_t local_sample_count() const override;

  const ClientFaultConfig& fault_config() const noexcept { return config_; }
  /// Local rounds the wrapper has observed (drives start_round gating).
  std::size_t rounds_seen() const noexcept { return rounds_seen_; }
  /// True once rounds_seen() has reached start_round for a real attack.
  bool attack_active() const noexcept {
    return config_.attack != UploadAttack::kNone &&
           rounds_seen_ >= config_.start_round;
  }

  /// Serializes the wrapper's attack state — round counter and replay
  /// history — under tag BYZC; the inner client checkpoints itself.
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

 private:
  FederatedClient* inner_;  // lint: ckpt-skip(non-owning wrapped client; checkpoints itself)
  ClientFaultConfig config_;  // lint: ckpt-skip(construction config; restore only validates it)
  std::size_t rounds_seen_ = 0;
  /// Honest models captured after each local round (bounded to
  /// stale_rounds entries); front() is the stalest.
  std::deque<std::vector<double>> history_;
};

}  // namespace fedpower::fed
