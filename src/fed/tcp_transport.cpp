#include "fed/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace fedpower::fed {

namespace {

void write_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n <= 0) throw std::runtime_error("tcp transport: write failed");
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

bool read_all(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n == 0) return false;  // orderly peer close
    if (n < 0) throw std::runtime_error("tcp transport: read failed");
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

constexpr std::size_t kMaxFrameBytes = 64 * 1024 * 1024;

}  // namespace

TcpReflector::TcpReflector() {
  listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener_ < 0) throw std::runtime_error("tcp reflector: socket failed");
  const int reuse = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    throw std::runtime_error("tcp reflector: bind failed");
  socklen_t len = sizeof addr;
  ::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listener_, 8) != 0)
    throw std::runtime_error("tcp reflector: listen failed");
  running_ = true;
  thread_ = std::thread([this] { serve(); });
}

TcpReflector::~TcpReflector() { stop(); }

void TcpReflector::stop() {
  if (!running_.exchange(false)) return;
  // Closing the listener unblocks accept().
  ::shutdown(listener_, SHUT_RDWR);
  ::close(listener_);
  if (thread_.joinable()) thread_.join();
}

void TcpReflector::serve() {
  while (running_) {
    const int conn = ::accept(listener_, nullptr, nullptr);
    if (conn < 0) break;  // listener closed by stop()
    // Echo frames until the client closes.
    try {
      for (;;) {
        std::uint32_t frame_len = 0;
        if (!read_all(conn, &frame_len, sizeof frame_len)) break;
        if (frame_len > kMaxFrameBytes) break;  // protocol violation
        std::vector<std::uint8_t> frame(frame_len);
        if (frame_len > 0 && !read_all(conn, frame.data(), frame_len)) break;
        write_all(conn, &frame_len, sizeof frame_len);
        if (frame_len > 0) write_all(conn, frame.data(), frame_len);
        ++frames_;
      }
    } catch (const std::runtime_error&) {
      // Connection error: drop this client, keep serving.
    }
    ::close(conn);
  }
}

TcpTransport::TcpTransport(const std::string& host, std::uint16_t port) {
  socket_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (socket_ < 0) throw std::runtime_error("tcp transport: socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(socket_);
    throw std::runtime_error("tcp transport: bad address " + host);
  }
  if (::connect(socket_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(socket_);
    throw std::runtime_error("tcp transport: connect failed");
  }
  const int nodelay = 1;
  ::setsockopt(socket_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
}

TcpTransport::~TcpTransport() {
  if (socket_ >= 0) ::close(socket_);
}

std::vector<std::uint8_t> TcpTransport::transfer(
    Direction direction, std::vector<std::uint8_t> payload) {
  if (payload.size() + 1 > kMaxFrameBytes)
    throw std::runtime_error("tcp transport: payload too large");
  // Frame: u32 length of (direction byte + payload), then the bytes.
  const auto frame_len = static_cast<std::uint32_t>(payload.size() + 1);
  std::vector<std::uint8_t> frame;
  frame.reserve(sizeof frame_len + frame_len);
  frame.resize(sizeof frame_len);
  std::memcpy(frame.data(), &frame_len, sizeof frame_len);
  frame.push_back(direction == Direction::kUplink ? 0 : 1);
  frame.insert(frame.end(), payload.begin(), payload.end());
  write_all(socket_, frame.data(), frame.size());

  std::uint32_t echoed_len = 0;
  if (!read_all(socket_, &echoed_len, sizeof echoed_len))
    throw std::runtime_error("tcp transport: peer closed");
  if (echoed_len != frame_len)
    throw std::runtime_error("tcp transport: echo length mismatch");
  std::vector<std::uint8_t> echoed(echoed_len);
  if (!read_all(socket_, echoed.data(), echoed_len))
    throw std::runtime_error("tcp transport: peer closed mid-frame");
  if (echoed[0] != (direction == Direction::kUplink ? 0 : 1))
    throw std::runtime_error("tcp transport: echo direction mismatch");

  if (direction == Direction::kUplink) {
    ++stats_.uplink_transfers;
    stats_.uplink_bytes += payload.size();
  } else {
    ++stats_.downlink_transfers;
    stats_.downlink_bytes += payload.size();
  }
  return {echoed.begin() + 1, echoed.end()};
}

}  // namespace fedpower::fed
