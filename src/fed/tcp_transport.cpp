#include "fed/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace fedpower::fed {

namespace {

[[noreturn]] void throw_errno(const char* what, int err) {
  throw TransportError(std::string("tcp transport: ") + what + ": " +
                       std::strerror(err));
}

/// send() the whole buffer. MSG_NOSIGNAL turns a peer-closed connection
/// into EPIPE (a catchable TransportError) instead of a process-killing
/// SIGPIPE; EINTR restarts the syscall.
void write_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw TransportError("tcp transport: send timed out");
      throw_errno("send failed", errno);
    }
    if (n == 0) throw TransportError("tcp transport: send made no progress");
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// recv() the whole buffer; returns false on an orderly peer close at a
/// frame boundary, throws TransportError on errors/timeouts, restarts on
/// EINTR.
bool read_all(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n == 0) return false;  // orderly peer close
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw TransportError("tcp transport: read timed out");
      throw_errno("read failed", errno);
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void set_io_timeouts(int fd, double timeout_s) {
  if (timeout_s <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_s - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace

void store_u32_le(std::uint32_t v, std::uint8_t* out) noexcept {
  out[0] = static_cast<std::uint8_t>(v & 0xff);
  out[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  out[2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  out[3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}

std::uint32_t load_u32_le(const std::uint8_t* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::vector<std::uint8_t> encode_frame(
    Direction direction, std::span<const std::uint8_t> payload) {
  const auto frame_len = static_cast<std::uint32_t>(payload.size() + 1);
  std::vector<std::uint8_t> frame(sizeof frame_len);
  frame.reserve(sizeof frame_len + frame_len);
  store_u32_le(frame_len, frame.data());
  frame.push_back(direction == Direction::kUplink ? 0 : 1);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

TcpReflector::TcpReflector() {
  listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener_ < 0) throw_errno("reflector socket failed", errno);
  const int reuse = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    throw_errno("reflector bind failed", errno);
  socklen_t len = sizeof addr;
  ::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listener_, 16) != 0)
    throw_errno("reflector listen failed", errno);
  running_ = true;
  thread_ = std::thread([this] { serve(); });
}

TcpReflector::~TcpReflector() { stop(); }

void TcpReflector::stop() {
  if (!running_.exchange(false)) return;
  // Closing the listener unblocks accept().
  ::shutdown(listener_, SHUT_RDWR);
  ::close(listener_);
  if (thread_.joinable()) thread_.join();
  // The accept loop has exited, so handlers_ is stable now.
  std::vector<Handler> handlers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    handlers.swap(handlers_);
  }
  // Shutdown unblocks handlers parked in recv(); fds stay valid until every
  // handler has exited, so no handler can race a reused descriptor.
  for (const Handler& handler : handlers) ::shutdown(handler.fd, SHUT_RDWR);
  for (Handler& handler : handlers)
    if (handler.thread.joinable()) handler.thread.join();
  for (const Handler& handler : handlers) ::close(handler.fd);
}

void TcpReflector::reap_finished_locked() {
  // Joining under mutex_ cannot deadlock (handlers never take the mutex)
  // and cannot block: a set done flag is the handler's final action, so
  // the thread is already at (or one instruction from) exit.
  std::size_t live = 0;
  for (std::size_t i = 0; i < handlers_.size(); ++i) {
    Handler& handler = handlers_[i];
    if (handler.done->load()) {
      if (handler.thread.joinable()) handler.thread.join();
      ::close(handler.fd);
    } else {
      // Guard the self-move: assigning a joinable std::thread onto itself
      // would terminate().
      if (live != i) handlers_[live] = std::move(handler);
      ++live;
    }
  }
  handlers_.resize(live);
}

std::size_t TcpReflector::live_handler_count() {
  const std::lock_guard<std::mutex> lock(mutex_);
  reap_finished_locked();
  return handlers_.size();
}

void TcpReflector::serve() {
  while (running_) {
    const int conn = ::accept(listener_, nullptr, nullptr);
    if (conn < 0) {
      if (!running_) break;  // listener closed by stop()
      // Transient accept failures must not kill the server.
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK)
        continue;
      break;  // genuinely fatal (EBADF, ENOTSOCK, ...)
    }
    if (!running_ || refuse_.load()) {
      ::close(conn);
      continue;
    }
    const std::size_t index = accepted_.fetch_add(1);
    const std::lock_guard<std::mutex> lock(mutex_);
    // Reap before admitting: a soak that accepts thousands of short-lived
    // connections holds one thread per live connection, not per accept.
    reap_finished_locked();
    Handler handler;
    handler.fd = conn;
    handler.done = std::make_shared<std::atomic<bool>>(false);
    auto done = handler.done;
    handler.thread = std::thread([this, conn, index, done] {
      handle(conn, index);
      done->store(true);
    });
    handlers_.push_back(std::move(handler));
  }
}

void TcpReflector::handle(int conn, std::size_t index) {
  const int nodelay = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
  std::size_t served = 0;
  try {
    for (;;) {
      std::uint8_t header[4];
      if (!read_all(conn, header, sizeof header)) break;
      const std::uint32_t frame_len = load_u32_le(header);
      if (frame_len > kMaxFrameBytes) break;  // protocol violation
      if (index == fault_connection_.load() &&
          served >= fault_after_frames_.load()) {
        // Injected fault: swallow the request and die without echoing, so
        // the client observes a mid-exchange connection loss.
        std::vector<std::uint8_t> sink(frame_len);
        if (frame_len > 0) read_all(conn, sink.data(), frame_len);
        break;
      }
      std::vector<std::uint8_t> echo(sizeof header + frame_len);
      std::copy(header, header + sizeof header, echo.begin());
      if (frame_len > 0 &&
          !read_all(conn, echo.data() + sizeof header, frame_len))
        break;
      // Count before echoing: once the client has its echo in hand, the
      // frame must already be visible in frames_served().
      ++served;
      ++frames_;
      write_all(conn, echo.data(), echo.size());
    }
  } catch (const TransportError&) {
    // Connection error: drop this client; other handlers keep serving.
  }
  // Half-close only; stop() owns the descriptor's lifetime.
  ::shutdown(conn, SHUT_RDWR);
}

TcpTransport::TcpTransport(const std::string& host, std::uint16_t port,
                           TcpTransportConfig config)
    : host_(host), port_(port), config_(config) {
  FEDPOWER_EXPECTS(config_.max_attempts >= 1);
  FEDPOWER_EXPECTS(config_.backoff_initial_s >= 0.0);
  FEDPOWER_EXPECTS(config_.backoff_multiplier >= 1.0);
  connect_socket();
}

TcpTransport::~TcpTransport() { close_socket(); }

void TcpTransport::close_socket() noexcept {
  if (socket_ >= 0) {
    ::close(socket_);
    socket_ = -1;
  }
}

void TcpTransport::connect_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket failed", errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("tcp transport: bad address " + host_);
  }

  // Non-blocking connect bounded by poll(): a black-holed server address
  // fails after connect_timeout_s instead of the kernel's minutes-long
  // default.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS && errno != EINTR) {
      const int err = errno;
      ::close(fd);
      throw_errno("connect failed", err);
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int timeout_ms =
        config_.connect_timeout_s > 0.0
            ? std::max(1, static_cast<int>(config_.connect_timeout_s * 1e3))
            : -1;
    int rc = 0;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      ::close(fd);
      throw TransportError("tcp transport: connect timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      ::close(fd);
      throw_errno("connect failed", err);
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for framed I/O

  set_io_timeouts(fd, config_.io_timeout_s);
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
  socket_ = fd;
}

std::vector<std::uint8_t> TcpTransport::exchange(
    Direction direction, const std::vector<std::uint8_t>& frame) {
  write_all(socket_, frame.data(), frame.size());

  std::uint8_t header[4];
  if (!read_all(socket_, header, sizeof header))
    throw TransportError("tcp transport: peer closed");
  const std::uint32_t echoed_len = load_u32_le(header);
  // Protocol sanity bound, checked before the length is trusted for
  // allocation or compared against the sent frame: both peers enforce
  // kMaxFrameBytes at decode (the reflector and the epoll front end close
  // oversized senders; the client refuses oversized advertisements here).
  if (echoed_len > kMaxFrameBytes)
    throw TransportError("tcp transport: oversized frame");
  if (echoed_len != frame.size() - sizeof header || echoed_len == 0)
    throw TransportError("tcp transport: echo length mismatch");
  std::vector<std::uint8_t> echoed(echoed_len);
  if (!read_all(socket_, echoed.data(), echoed_len))
    throw TransportError("tcp transport: truncated frame");
  if (echoed[0] != (direction == Direction::kUplink ? 0 : 1))
    throw TransportError("tcp transport: echo direction mismatch");
  return {echoed.begin() + 1, echoed.end()};
}

std::vector<std::uint8_t> TcpTransport::transfer(
    Direction direction, std::vector<std::uint8_t> payload) {
  if (payload.size() + 1 > kMaxFrameBytes)
    throw TransportError("tcp transport: payload too large");
  const std::vector<std::uint8_t> frame = encode_frame(direction, payload);

  double backoff = config_.backoff_initial_s;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      // A faulted exchange may leave the byte stream desynchronized, so
      // every retry starts from a fresh connection.
      if (socket_ < 0) connect_socket();
      std::vector<std::uint8_t> delivered = exchange(direction, frame);
      if (direction == Direction::kUplink) {
        ++stats_.uplink_transfers;
        stats_.uplink_bytes += payload.size();
      } else {
        ++stats_.downlink_transfers;
        stats_.downlink_bytes += payload.size();
      }
      return delivered;
    } catch (const TransportError&) {
      close_socket();
      if (attempt >= config_.max_attempts) throw;
      ++stats_.retries;
      if (backoff > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * config_.backoff_multiplier,
                         config_.backoff_max_s);
    }
  }
}

}  // namespace fedpower::fed
