#include "fed/federation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace fedpower::fed {

FederatedAveraging::FederatedAveraging(std::vector<FederatedClient*> clients,
                                       Transport* transport,
                                       AggregationMode mode,
                                       const ModelCodec* codec)
    : clients_(std::move(clients)),
      transport_(transport),
      mode_(mode),
      codec_(codec != nullptr ? codec : &Float32Codec::instance()) {
  FEDPOWER_EXPECTS(!clients_.empty());
  FEDPOWER_EXPECTS(transport_ != nullptr);
  for (const auto* client : clients_) FEDPOWER_EXPECTS(client != nullptr);
}

void FederatedAveraging::initialize(std::vector<double> global) {
  FEDPOWER_EXPECTS(!global.empty());
  global_ = std::move(global);
}

void FederatedAveraging::set_participation(double fraction,
                                           std::uint64_t seed) {
  FEDPOWER_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  participation_ = fraction;
  participation_rng_ = util::Rng{seed};
}

std::vector<std::size_t> FederatedAveraging::draw_participants() {
  std::vector<std::size_t> all(clients_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  if (participation_ >= 1.0) return all;
  const auto count = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(participation_ * static_cast<double>(all.size()))));
  participation_rng_.shuffle(all);
  all.resize(count);
  std::sort(all.begin(), all.end());
  return all;
}

RoundResult FederatedAveraging::run_round() {
  FEDPOWER_EXPECTS(!global_.empty());
  RoundResult result;
  result.round = ++rounds_completed_;
  result.participants = draw_participants();

  // Broadcast theta_r to every participating client (Algorithm 2 line 3).
  // Each client receives its own transfer, as over a real network.
  const std::vector<std::uint8_t> broadcast = codec_->encode(global_);
  for (const std::size_t i : result.participants) {
    const auto delivered =
        transport_->transfer(Direction::kDownlink, broadcast);
    result.downlink_bytes += delivered.size();
    clients_[i]->receive_global(codec_->decode(delivered));
  }

  // Local optimization (line 5) and upload (line 6). Aggregation is
  // synchronous: the server waits for all participating local models.
  std::vector<std::vector<double>> locals;
  std::vector<double> weights;
  locals.reserve(result.participants.size());
  for (const std::size_t i : result.participants) {
    clients_[i]->run_local_round();
    const auto payload = transport_->transfer(
        Direction::kUplink, codec_->encode(clients_[i]->local_parameters()));
    result.uplink_bytes += payload.size();
    locals.push_back(codec_->decode(payload));
    weights.push_back(
        static_cast<double>(clients_[i]->local_sample_count()));
  }

  // theta_{r+1} (line 8).
  switch (mode_) {
    case AggregationMode::kUnweightedMean:
      global_ = average_unweighted(locals);
      break;
    case AggregationMode::kSampleWeighted:
      global_ = average_weighted(locals, weights);
      break;
    case AggregationMode::kCoordinateMedian:
      global_ = aggregate_median(locals);
      break;
    case AggregationMode::kTrimmedMean: {
      // ~20% trimmed; degrades to the plain mean below three clients.
      const std::size_t trim =
          locals.size() >= 3 ? std::max<std::size_t>(1, locals.size() / 5)
                             : 0;
      global_ = aggregate_trimmed_mean(locals, trim);
      break;
    }
  }
  return result;
}

void FederatedAveraging::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

}  // namespace fedpower::fed
