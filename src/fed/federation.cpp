#include "fed/federation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>

#include "ckpt/state_io.hpp"
#include "util/assert.hpp"

namespace fedpower::fed {

std::size_t RoundResult::effective_clients() const noexcept {
  // The exclusion lists are each sorted, but a client can appear in more
  // than one (e.g. quarantined and then lost to a transport fault), so the
  // categories must be counted as a set union, not summed. A 4-way sorted
  // merge stays allocation-free, which keeps this noexcept.
  const std::vector<std::size_t>* lists[] = {&dropped, &rejected, &screened,
                                             &quarantined};
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::size_t cursor[] = {0, 0, 0, 0};
  std::size_t excluded = 0;
  for (;;) {
    std::size_t next = kNone;
    for (std::size_t l = 0; l < 4; ++l) {
      const auto& list = *lists[l];
      if (cursor[l] < list.size() && list[cursor[l]] < next)
        next = list[cursor[l]];
    }
    if (next == kNone) break;
    for (std::size_t l = 0; l < 4; ++l) {
      const auto& list = *lists[l];
      while (cursor[l] < list.size() && list[cursor[l]] == next) ++cursor[l];
    }
    ++excluded;
  }
  return excluded <= participants.size() ? participants.size() - excluded
                                         : std::size_t{0};
}

FederatedAveraging::FederatedAveraging(std::vector<FederatedClient*> clients,
                                       Transport* transport,
                                       AggregationMode mode,
                                       const ModelCodec* codec)
    : clients_(std::move(clients)),
      transport_(transport),
      mode_(mode),
      codec_(codec != nullptr ? codec : &Float32Codec::instance()) {
  FEDPOWER_EXPECTS(!clients_.empty());
  FEDPOWER_EXPECTS(transport_ != nullptr);
  for (const auto* client : clients_) FEDPOWER_EXPECTS(client != nullptr);
  client_transports_.assign(clients_.size(), nullptr);
}

void FederatedAveraging::initialize(std::vector<double> global) {
  FEDPOWER_EXPECTS(!global.empty());
  global_ = std::move(global);
}

void FederatedAveraging::set_sampling(const SamplingConfig& config) {
  FEDPOWER_EXPECTS(config.fraction > 0.0 && config.fraction <= 1.0);
  FEDPOWER_EXPECTS(config.min_clients >= 1);
  sampling_ = config;
  participation_rng_ = util::Rng{config.seed};
}

void FederatedAveraging::set_participation(double fraction,
                                           std::uint64_t seed) {
  SamplingConfig config;
  config.fraction = fraction;
  config.seed = seed;
  set_sampling(config);
}

void FederatedAveraging::set_quorum(std::size_t min_survivors) {
  FEDPOWER_EXPECTS(min_survivors >= 1 && min_survivors <= clients_.size());
  quorum_ = min_survivors;
}

void FederatedAveraging::set_client_transport(std::size_t client,
                                              Transport* transport) {
  FEDPOWER_EXPECTS(client < clients_.size());
  FEDPOWER_EXPECTS(transport != nullptr);
  client_transports_[client] = transport;
  transport_dedup_stale_ = true;
}

void FederatedAveraging::enable_defense(const DefenseConfig& config) {
  if (!config.enabled) {
    defense_.reset();
    return;
  }
  FEDPOWER_EXPECTS(rounds_completed_ == 0);
  defense_.emplace(config, clients_.size());
}

void FederatedAveraging::set_round_deadline(double seconds) {
  FEDPOWER_EXPECTS(seconds >= 0.0);
  deadline_s_ = seconds;
}

void FederatedAveraging::set_trim_count(std::size_t trim_count) {
  trim_count_override_ = true;
  trim_count_ = trim_count;
}

void FederatedAveraging::set_local_executor(util::ParallelFor executor) {
  executor_ = std::move(executor);
}

Transport& FederatedAveraging::transport_for(std::size_t client) noexcept {
  Transport* t = client_transports_[client];
  return t != nullptr ? *t : *transport_;
}

std::size_t FederatedAveraging::total_transport_retries() const {
  // Retry accounting runs twice per round; the historic implementation
  // deduplicated with an O(n^2) std::find over a pointer vector, which is
  // pathological once every client owns its own transport (100k clients =
  // 10^10 pointer compares per round). Sort-based dedup instead, cached
  // until the transport wiring changes. Address order is not stable across
  // runs, but the sum over the distinct set is order-independent, so the
  // result stays deterministic.
  if (transport_dedup_stale_) {
    transport_dedup_.clear();
    transport_dedup_.reserve(client_transports_.size() + 1);
    transport_dedup_.push_back(transport_);
    for (const Transport* t : client_transports_)
      if (t != nullptr) transport_dedup_.push_back(t);
    std::sort(transport_dedup_.begin(), transport_dedup_.end());
    transport_dedup_.erase(
        std::unique(transport_dedup_.begin(), transport_dedup_.end()),
        transport_dedup_.end());
    transport_dedup_stale_ = false;
  }
  std::size_t total = 0;
  for (const Transport* t : transport_dedup_) total += t->stats().retries;
  return total;
}

std::vector<std::size_t> FederatedAveraging::draw_participants() {
  std::vector<std::size_t> all(clients_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  // Full participation consumes no randomness: the historic RNG stream
  // shape of fraction = 1 runs is part of the checkpoint contract.
  if (sampling_.fraction >= 1.0) return all;

  // Partition out quarantined clients (quarantine-aware sampling): the
  // C-fraction draw is spent on clients whose uploads can reach the
  // aggregate; quarantined clients ride along as probation participants
  // below. With defense off (or awareness disabled) every client is
  // eligible and the shuffle consumes exactly the historic stream.
  std::vector<std::size_t> eligible;
  std::vector<std::size_t> riders;
  if (defense_ && sampling_.quarantine_aware) {
    eligible.reserve(all.size());
    for (const std::size_t i : all)
      (defense_->quarantined(i) ? riders : eligible).push_back(i);
  } else {
    eligible = std::move(all);
  }
  if (eligible.empty()) return riders;  // probation-only round

  const auto ceil_fraction = static_cast<std::size_t>(std::ceil(
      sampling_.fraction * static_cast<double>(eligible.size())));
  const std::size_t count =
      std::min(eligible.size(),
               std::max({std::size_t{1}, sampling_.min_clients,
                         ceil_fraction}));
  participation_rng_.shuffle(eligible);
  eligible.resize(count);
  // Probation riders: quarantined clients participate every round (their
  // uploads feed re-admission streaks, never the aggregate), so quarantine
  // can end even when C is small.
  for (const std::size_t r : riders) eligible.push_back(r);
  std::sort(eligible.begin(), eligible.end());
  return eligible;
}

RoundResult FederatedAveraging::run_round() {
  FEDPOWER_EXPECTS(!global_.empty());
  RoundResult result;
  // The counter is bumped only after aggregation: a round that throws
  // (transport fault cascade below quorum) leaves it untouched.
  result.round = rounds_completed_ + 1;
  result.participants = draw_participants();
  const std::size_t retries_before = total_transport_retries();

  // Broadcast theta_r to every participating client (Algorithm 2 line 3).
  // Each client receives its own transfer, as over a real network; a
  // client whose link faults is dropped for the round but must not abort
  // it (FedAvg with partial participation covers the survivors).
  std::vector<char> lost(clients_.size(), 0);
  // Per-client transport latency this round (downlink now, uplink added
  // below). Transfers are serial in client-index order, so the cumulative-
  // latency delta around one transfer is exactly that client's share even
  // when clients share a link.
  const bool deadline_armed = deadline_s_ > 0.0;
  std::vector<double> link_latency(deadline_armed ? clients_.size() : 0, 0.0);
  const std::vector<std::uint8_t> broadcast = codec_->encode(global_);
  for (const std::size_t i : result.participants) {
    const double latency_before =
        deadline_armed ? transport_for(i).cumulative_latency_s() : 0.0;
    try {
      const auto delivered =
          transport_for(i).transfer(Direction::kDownlink, broadcast);
      clients_[i]->receive_global(codec_->decode(delivered));
      result.downlink_bytes += delivered.size();
    } catch (const TransportError&) {
      lost[i] = 1;  // unreachable device
    } catch (const std::invalid_argument&) {
      lost[i] = 1;  // payload damaged in flight, codec rejected it
    }
    if (deadline_armed)
      link_latency[i] =
          transport_for(i).cumulative_latency_s() - latency_before;
  }

  // Local optimization (line 5): every still-reachable participant trains
  // its steps_per_round local steps, in parallel when an executor is set
  // (one client = one task). The barrier at the end of for_each_index is
  // what makes the round synchronous; clients own disjoint state, so the
  // schedule cannot change what they learn and the result matches the
  // serial loop bit for bit.
  std::vector<std::size_t> training;
  training.reserve(result.participants.size());
  for (const std::size_t i : result.participants)
    if (!lost[i]) training.push_back(i);
  util::for_each_index(executor_, training.size(), [&](std::size_t k) {
    clients_[training[k]]->run_local_round();
  });

  // Upload (line 6), serial and in client-index order — transports are not
  // thread-safe, fault-injection streams must see one deterministic
  // transfer sequence, and the defense screens below accumulate history in
  // client order (DESIGN.md §7). Aggregation is synchronous over the
  // survivors.
  std::vector<std::vector<double>> locals;
  std::vector<double> weights;
  std::vector<char> straggler(clients_.size(), 0);
  std::vector<char> screened(clients_.size(), 0);
  std::vector<char> defense_rejected(clients_.size(), 0);
  std::vector<char> in_quarantine(clients_.size(), 0);
  if (defense_)
    for (const std::size_t i : result.participants)
      if (defense_->quarantined(i)) in_quarantine[i] = 1;
  std::vector<ScreenObservation> observations;
  observations.reserve(result.participants.size());
  locals.reserve(result.participants.size());
  for (const std::size_t i : training) {
    try {
      const double latency_before =
          deadline_armed ? transport_for(i).cumulative_latency_s() : 0.0;
      const auto payload = transport_for(i).transfer(
          Direction::kUplink,
          codec_->encode(clients_[i]->local_parameters()));
      if (deadline_armed) {
        // Deadline demotion: a client whose downlink + uplink latency blew
        // the round budget is a dropout, not a suspect — its upload is
        // discarded before decoding or screening, so no defense
        // observation is recorded and an honest-but-slow client keeps its
        // reputation (DESIGN.md §13).
        const double round_latency =
            link_latency[i] +
            (transport_for(i).cumulative_latency_s() - latency_before);
        if (round_latency > deadline_s_) {
          straggler[i] = 1;
          lost[i] = 1;
          continue;
        }
      }
      auto local = codec_->decode(payload);
      if (local.size() != global_.size()) {
        lost[i] = 1;  // decoded to the wrong shape: treat as corrupt
        continue;
      }
      // Server-side screening: a NaN or infinity anywhere in an upload
      // would poison every mean-style aggregate, so a diverged (or
      // malicious) model is excluded exactly like a transport dropout.
      // Shared with the serve pipeline (screening parity, DESIGN.md §13).
      if (any_non_finite(local)) {
        screened[i] = 1;
        if (defense_) observations.push_back(defense_->non_finite(i));
        continue;
      }
      result.uplink_bytes += payload.size();
      if (defense_) {
        // Screening may clip `local` in place; the verdict only feeds the
        // reputation update after the quorum holds (commit_round below).
        const ScreenObservation obs = defense_->screen(i, local, global_);
        observations.push_back(obs);
        const bool clean = obs.verdict == ScreenVerdict::kAccepted ||
                           obs.verdict == ScreenVerdict::kClipped;
        if (!clean) {
          if (!in_quarantine[i]) defense_rejected[i] = 1;
          continue;
        }
        // A quarantined client's clean upload feeds its probation streak
        // but stays out of the aggregate until re-admission.
        if (in_quarantine[i]) continue;
      }
      locals.push_back(std::move(local));
      weights.push_back(
          static_cast<double>(clients_[i]->local_sample_count()));
    } catch (const TransportError&) {
      lost[i] = 1;
    } catch (const std::invalid_argument&) {
      lost[i] = 1;
    }
  }

  for (const std::size_t i : result.participants) {
    if (lost[i]) result.dropped.push_back(i);
    if (straggler[i]) result.stragglers.push_back(i);
    if (screened[i]) result.rejected.push_back(i);
    if (defense_rejected[i]) result.screened.push_back(i);
    if (in_quarantine[i]) result.quarantined.push_back(i);
  }
  result.transport_retries = total_transport_retries() - retries_before;

  // An aborted round drops its screening observations along with the round
  // counter: reputations only move on completed rounds. The quorum is
  // checked against this round's aggregation-eligible participants — the
  // drawn clients minus probation riders — never the full fleet: a round
  // that samples fewer clients than the configured quorum only demands
  // that every sampled client survive. (Pre-fix the absolute count was
  // used, so small-C rounds threw QuorumError spuriously with zero
  // faults.) At least one upload must always survive.
  const std::size_t eligible_drawn =
      result.participants.size() - result.quarantined.size();
  const std::size_t required =
      std::max<std::size_t>(1, std::min(quorum_, eligible_drawn));
  if (locals.size() < required) throw QuorumError(locals.size(), required);

  // theta_{r+1} (line 8). The per-mode parameter policy lives in
  // aggregate_with_mode, shared with the serve pipeline's deterministic
  // commit so both paths run the exact same floating-point operations.
  // Large fleets shard the coordinate reduction across the executor
  // (bit-identical to serial; see aggregate.hpp).
  AggregateOutcome outcome;
  global_ = aggregate_with_mode(
      mode_, locals, weights,
      trim_count_override_ ? std::optional<std::size_t>(trim_count_)
                           : std::nullopt,
      executor_, outcome);
  result.trim_count = outcome.trim_count;
  result.trim_clamped = outcome.trim_clamped;

  if (defense_) {
    const DefenseRoundLog log = defense_->commit_round(observations);
    result.readmitted = log.readmitted;
    result.clipped = log.clipped;
  }
  ++rounds_completed_;
  return result;
}

void FederatedAveraging::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

namespace {
constexpr ckpt::Tag kFedTag{'F', 'A', 'V', 'G'};
}  // namespace

void FederatedAveraging::save_state(ckpt::Writer& out) const {
  write_tag(out, kFedTag);
  out.u64(clients_.size());
  out.u64(rounds_completed_);
  ckpt::save_rng(out, participation_rng_);
  out.vec_f64(global_);
  // Appended only when the defense pipeline is armed: clean-run snapshots
  // keep the pre-defense byte format.
  if (defense_) defense_->save_state(out);
}

void FederatedAveraging::restore_state(ckpt::Reader& in) {
  expect_tag(in, kFedTag, "federated averaging server");
  const std::uint64_t client_count = in.u64();
  if (client_count != clients_.size())
    throw ckpt::StateMismatchError(
        "federation snapshot was taken with " + std::to_string(client_count) +
        " client(s), this federation has " + std::to_string(clients_.size()));
  rounds_completed_ = in.u64();
  ckpt::restore_rng(in, participation_rng_);
  global_ = in.vec_f64();
  // An uninitialized client reports an empty model, which says nothing
  // about shape; only a client that already holds parameters can expose a
  // snapshot/fleet mismatch.
  const std::size_t client_params =
      clients_.front()->local_parameters().size();
  if (!global_.empty() && client_params != 0 &&
      global_.size() != client_params)
    throw ckpt::StateMismatchError(
        "federation snapshot global model has " +
        std::to_string(global_.size()) +
        " parameter(s), the clients' models have " +
        std::to_string(client_params));
  if (defense_) defense_->restore_state(in);
}

}  // namespace fedpower::fed
