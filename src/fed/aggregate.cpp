#include "fed/aggregate.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fedpower::fed {

namespace {

/// Runs column_fn(i) for every coordinate, sharded across the executor when
/// the aggregation is large enough to amortize the scheduling. Each column
/// is computed exactly as in the serial loop, so the split cannot change
/// results.
void for_each_column(std::size_t dim, std::size_t model_count,
                     const util::ParallelFor& parallel_for,
                     const std::function<void(std::size_t)>& column_fn) {
  if (parallel_for && dim * model_count >= kParallelAggregationMinWork) {
    parallel_for(dim, column_fn);
    return;
  }
  for (std::size_t i = 0; i < dim; ++i) column_fn(i);
}

/// Collects coordinate i of every model into a scratch buffer.
void gather_coordinate(const std::vector<std::vector<double>>& models,
                       std::size_t i, std::vector<double>& scratch) {
  scratch.clear();
  for (const auto& model : models) scratch.push_back(model[i]);
}

}  // namespace

std::vector<double> average_unweighted(
    const std::vector<std::vector<double>>& models,
    const util::ParallelFor& parallel_for) {
  FEDPOWER_EXPECTS(!models.empty());
  const std::size_t dim = models.front().size();
  for (const auto& model : models) FEDPOWER_EXPECTS(model.size() == dim);
  const double inv_n = 1.0 / static_cast<double>(models.size());
  std::vector<double> global(dim, 0.0);
  for_each_column(dim, models.size(), parallel_for, [&](std::size_t i) {
    double sum = 0.0;
    for (const auto& model : models) sum += model[i];
    global[i] = sum * inv_n;
  });
  return global;
}

std::vector<double> average_unweighted(
    const std::vector<std::vector<double>>& models) {
  return average_unweighted(models, util::ParallelFor{});
}

std::vector<double> average_weighted(
    const std::vector<std::vector<double>>& models,
    std::span<const double> weights, const util::ParallelFor& parallel_for) {
  FEDPOWER_EXPECTS(!models.empty());
  FEDPOWER_EXPECTS(weights.size() == models.size());
  const std::size_t dim = models.front().size();
  for (const auto& model : models) FEDPOWER_EXPECTS(model.size() == dim);
  double weight_sum = 0.0;
  for (const double w : weights) {
    FEDPOWER_EXPECTS(w >= 0.0);
    weight_sum += w;
  }
  FEDPOWER_EXPECTS(weight_sum > 0.0);
  std::vector<double> normalized(weights.begin(), weights.end());
  for (double& w : normalized) w /= weight_sum;
  std::vector<double> global(dim, 0.0);
  for_each_column(dim, models.size(), parallel_for, [&](std::size_t i) {
    double sum = 0.0;
    for (std::size_t m = 0; m < models.size(); ++m)
      sum += normalized[m] * models[m][i];
    global[i] = sum;
  });
  return global;
}

std::vector<double> average_weighted(
    const std::vector<std::vector<double>>& models,
    std::span<const double> weights) {
  return average_weighted(models, weights, util::ParallelFor{});
}

std::vector<double> aggregate_median(
    const std::vector<std::vector<double>>& models,
    const util::ParallelFor& parallel_for) {
  FEDPOWER_EXPECTS(!models.empty());
  const std::size_t dim = models.front().size();
  for (const auto& model : models) FEDPOWER_EXPECTS(model.size() == dim);
  std::vector<double> global(dim);
  for_each_column(dim, models.size(), parallel_for, [&](std::size_t i) {
    std::vector<double> scratch;
    scratch.reserve(models.size());
    gather_coordinate(models, i, scratch);
    const std::size_t mid = scratch.size() / 2;
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(mid),
                     scratch.end());
    if (scratch.size() % 2 == 1) {
      global[i] = scratch[mid];
    } else {
      const double upper = scratch[mid];
      const double lower = *std::max_element(
          scratch.begin(),
          scratch.begin() + static_cast<std::ptrdiff_t>(mid));
      global[i] = (lower + upper) / 2.0;
    }
  });
  return global;
}

std::vector<double> aggregate_median(
    const std::vector<std::vector<double>>& models) {
  return aggregate_median(models, util::ParallelFor{});
}

std::vector<double> aggregate_trimmed_mean(
    const std::vector<std::vector<double>>& models, std::size_t trim_count,
    const util::ParallelFor& parallel_for) {
  FEDPOWER_EXPECTS(!models.empty());
  FEDPOWER_EXPECTS(2 * trim_count < models.size());
  const std::size_t dim = models.front().size();
  for (const auto& model : models) FEDPOWER_EXPECTS(model.size() == dim);
  const std::size_t keep = models.size() - 2 * trim_count;
  std::vector<double> global(dim);
  for_each_column(dim, models.size(), parallel_for, [&](std::size_t i) {
    std::vector<double> scratch;
    scratch.reserve(models.size());
    gather_coordinate(models, i, scratch);
    std::sort(scratch.begin(), scratch.end());
    double sum = 0.0;
    for (std::size_t k = trim_count; k < trim_count + keep; ++k)
      sum += scratch[k];
    global[i] = sum / static_cast<double>(keep);
  });
  return global;
}

std::vector<double> aggregate_trimmed_mean(
    const std::vector<std::vector<double>>& models, std::size_t trim_count) {
  return aggregate_trimmed_mean(models, trim_count, util::ParallelFor{});
}

}  // namespace fedpower::fed
