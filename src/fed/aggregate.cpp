#include "fed/aggregate.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fedpower::fed {

std::vector<double> average_unweighted(
    const std::vector<std::vector<double>>& models) {
  FEDPOWER_EXPECTS(!models.empty());
  const std::size_t dim = models.front().size();
  std::vector<double> global(dim, 0.0);
  for (const auto& model : models) {
    FEDPOWER_EXPECTS(model.size() == dim);
    for (std::size_t i = 0; i < dim; ++i) global[i] += model[i];
  }
  const double inv_n = 1.0 / static_cast<double>(models.size());
  for (double& p : global) p *= inv_n;
  return global;
}

std::vector<double> average_weighted(
    const std::vector<std::vector<double>>& models,
    std::span<const double> weights) {
  FEDPOWER_EXPECTS(!models.empty());
  FEDPOWER_EXPECTS(weights.size() == models.size());
  const std::size_t dim = models.front().size();
  double weight_sum = 0.0;
  for (const double w : weights) {
    FEDPOWER_EXPECTS(w >= 0.0);
    weight_sum += w;
  }
  FEDPOWER_EXPECTS(weight_sum > 0.0);
  std::vector<double> global(dim, 0.0);
  for (std::size_t m = 0; m < models.size(); ++m) {
    FEDPOWER_EXPECTS(models[m].size() == dim);
    const double w = weights[m] / weight_sum;
    for (std::size_t i = 0; i < dim; ++i) global[i] += w * models[m][i];
  }
  return global;
}

namespace {

/// Collects coordinate i of every model into a scratch buffer.
void gather_coordinate(const std::vector<std::vector<double>>& models,
                       std::size_t i, std::vector<double>& scratch) {
  scratch.clear();
  for (const auto& model : models) scratch.push_back(model[i]);
}

}  // namespace

std::vector<double> aggregate_median(
    const std::vector<std::vector<double>>& models) {
  FEDPOWER_EXPECTS(!models.empty());
  const std::size_t dim = models.front().size();
  for (const auto& model : models) FEDPOWER_EXPECTS(model.size() == dim);
  std::vector<double> global(dim);
  std::vector<double> scratch;
  scratch.reserve(models.size());
  for (std::size_t i = 0; i < dim; ++i) {
    gather_coordinate(models, i, scratch);
    const std::size_t mid = scratch.size() / 2;
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(mid),
                     scratch.end());
    if (scratch.size() % 2 == 1) {
      global[i] = scratch[mid];
    } else {
      const double upper = scratch[mid];
      const double lower = *std::max_element(
          scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(mid));
      global[i] = (lower + upper) / 2.0;
    }
  }
  return global;
}

std::vector<double> aggregate_trimmed_mean(
    const std::vector<std::vector<double>>& models, std::size_t trim_count) {
  FEDPOWER_EXPECTS(!models.empty());
  FEDPOWER_EXPECTS(2 * trim_count < models.size());
  const std::size_t dim = models.front().size();
  for (const auto& model : models) FEDPOWER_EXPECTS(model.size() == dim);
  std::vector<double> global(dim);
  std::vector<double> scratch;
  scratch.reserve(models.size());
  const std::size_t keep = models.size() - 2 * trim_count;
  for (std::size_t i = 0; i < dim; ++i) {
    gather_coordinate(models, i, scratch);
    std::sort(scratch.begin(), scratch.end());
    double sum = 0.0;
    for (std::size_t k = trim_count; k < trim_count + keep; ++k)
      sum += scratch[k];
    global[i] = sum / static_cast<double>(keep);
  }
  return global;
}

}  // namespace fedpower::fed
