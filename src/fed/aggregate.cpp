#include "fed/aggregate.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fedpower::fed {

namespace {

/// Runs column_fn(i) for every coordinate, sharded across the executor when
/// the aggregation is large enough to amortize the scheduling. Each column
/// is computed exactly as in the serial loop, so the split cannot change
/// results.
void for_each_column(std::size_t dim, std::size_t model_count,
                     const util::ParallelFor& parallel_for,
                     const std::function<void(std::size_t)>& column_fn) {
  if (parallel_for && dim * model_count >= kParallelAggregationMinWork) {
    parallel_for(dim, column_fn);
    return;
  }
  for (std::size_t i = 0; i < dim; ++i) column_fn(i);
}

/// Collects coordinate i of every model into a scratch buffer.
void gather_coordinate(const std::vector<std::vector<double>>& models,
                       std::size_t i, std::vector<double>& scratch) {
  scratch.clear();
  for (const auto& model : models) scratch.push_back(model[i]);
}

}  // namespace

std::vector<double> average_unweighted(
    const std::vector<std::vector<double>>& models,
    const util::ParallelFor& parallel_for) {
  FEDPOWER_EXPECTS(!models.empty());
  const std::size_t dim = models.front().size();
  for (const auto& model : models) FEDPOWER_EXPECTS(model.size() == dim);
  const double inv_n = 1.0 / static_cast<double>(models.size());
  std::vector<double> global(dim, 0.0);
  for_each_column(dim, models.size(), parallel_for, [&](std::size_t i) {
    double sum = 0.0;
    for (const auto& model : models) sum += model[i];
    global[i] = sum * inv_n;
  });
  return global;
}

std::vector<double> average_unweighted(
    const std::vector<std::vector<double>>& models) {
  return average_unweighted(models, util::ParallelFor{});
}

std::vector<double> average_weighted(
    const std::vector<std::vector<double>>& models,
    std::span<const double> weights, const util::ParallelFor& parallel_for) {
  FEDPOWER_EXPECTS(!models.empty());
  FEDPOWER_EXPECTS(weights.size() == models.size());
  const std::size_t dim = models.front().size();
  for (const auto& model : models) FEDPOWER_EXPECTS(model.size() == dim);
  double weight_sum = 0.0;
  for (const double w : weights) {
    FEDPOWER_EXPECTS(w >= 0.0);
    weight_sum += w;
  }
  FEDPOWER_EXPECTS(weight_sum > 0.0);
  std::vector<double> normalized(weights.begin(), weights.end());
  for (double& w : normalized) w /= weight_sum;
  std::vector<double> global(dim, 0.0);
  for_each_column(dim, models.size(), parallel_for, [&](std::size_t i) {
    double sum = 0.0;
    for (std::size_t m = 0; m < models.size(); ++m)
      sum += normalized[m] * models[m][i];
    global[i] = sum;
  });
  return global;
}

std::vector<double> average_weighted(
    const std::vector<std::vector<double>>& models,
    std::span<const double> weights) {
  return average_weighted(models, weights, util::ParallelFor{});
}

std::vector<double> aggregate_median(
    const std::vector<std::vector<double>>& models,
    const util::ParallelFor& parallel_for) {
  FEDPOWER_EXPECTS(!models.empty());
  const std::size_t dim = models.front().size();
  for (const auto& model : models) FEDPOWER_EXPECTS(model.size() == dim);
  std::vector<double> global(dim);
  for_each_column(dim, models.size(), parallel_for, [&](std::size_t i) {
    std::vector<double> scratch;
    scratch.reserve(models.size());
    gather_coordinate(models, i, scratch);
    const std::size_t mid = scratch.size() / 2;
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(mid),
                     scratch.end());
    if (scratch.size() % 2 == 1) {
      global[i] = scratch[mid];
    } else {
      const double upper = scratch[mid];
      const double lower = *std::max_element(
          scratch.begin(),
          scratch.begin() + static_cast<std::ptrdiff_t>(mid));
      global[i] = (lower + upper) / 2.0;
    }
  });
  return global;
}

std::vector<double> aggregate_median(
    const std::vector<std::vector<double>>& models) {
  return aggregate_median(models, util::ParallelFor{});
}

std::size_t clamp_trim_count(std::size_t trim_count,
                             std::size_t model_count) noexcept {
  if (model_count == 0) return 0;
  return std::min(trim_count, (model_count - 1) / 2);
}

std::vector<double> aggregate_trimmed_mean(
    const std::vector<std::vector<double>>& models, std::size_t trim_count,
    const util::ParallelFor& parallel_for) {
  FEDPOWER_EXPECTS(!models.empty());
  // Dropouts can shrink the survivor set below 2 * trim_count + 1 mid-run;
  // clamping (instead of asserting) keeps the round alive with the widest
  // trim the survivors support.
  trim_count = clamp_trim_count(trim_count, models.size());
  const std::size_t dim = models.front().size();
  for (const auto& model : models) FEDPOWER_EXPECTS(model.size() == dim);
  const std::size_t keep = models.size() - 2 * trim_count;
  std::vector<double> global(dim);
  for_each_column(dim, models.size(), parallel_for, [&](std::size_t i) {
    std::vector<double> scratch;
    scratch.reserve(models.size());
    gather_coordinate(models, i, scratch);
    std::sort(scratch.begin(), scratch.end());
    double sum = 0.0;
    for (std::size_t k = trim_count; k < trim_count + keep; ++k)
      sum += scratch[k];
    global[i] = sum / static_cast<double>(keep);
  });
  return global;
}

std::vector<double> aggregate_trimmed_mean(
    const std::vector<std::vector<double>>& models, std::size_t trim_count) {
  return aggregate_trimmed_mean(models, trim_count, util::ParallelFor{});
}

std::vector<double> aggregate_krum(
    const std::vector<std::vector<double>>& models,
    std::size_t byzantine_count, std::size_t select_count,
    const util::ParallelFor& parallel_for) {
  FEDPOWER_EXPECTS(!models.empty());
  const std::size_t n = models.size();
  const std::size_t dim = models.front().size();
  for (const auto& model : models) FEDPOWER_EXPECTS(model.size() == dim);
  if (n == 1) return models.front();

  // Krum needs at least one honest neighbour per model: f <= n - 3. Small
  // survivor sets degrade gracefully (f = 0: pick the most central model).
  const std::size_t f = n >= 3 ? std::min(byzantine_count, n - 3)
                               : std::size_t{0};
  const std::size_t neighbors = n > f + 2 ? n - f - 2 : std::size_t{1};

  // Pairwise squared distances. Each row is computed independently (row i
  // owns dist[i*n .. i*n+n)), so sharding rows across the executor writes
  // disjoint slots; within a row the coordinate loop keeps the serial
  // accumulation order, making the matrix bit-identical at every thread
  // count. The symmetric half is recomputed rather than shared — cheaper
  // than a synchronization point, and order-stable.
  std::vector<double> dist(n * n, 0.0);
  const auto fill_row = [&](std::size_t i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double sum = 0.0;
      const std::vector<double>& a = models[i];
      const std::vector<double>& b = models[j];
      for (std::size_t c = 0; c < dim; ++c) {
        const double d = a[c] - b[c];
        sum += d * d;
      }
      dist[i * n + j] = sum;
    }
  };
  if (parallel_for && dim * n * n >= kParallelAggregationMinWork) {
    parallel_for(n, fill_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) fill_row(i);
  }

  // Score_i = sum of the `neighbors` smallest distances, accumulated in
  // ascending order after a full sort — the order is a pure function of
  // the values, never of the schedule.
  std::vector<double> score(n, 0.0);
  std::vector<double> scratch;
  scratch.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.clear();
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) scratch.push_back(dist[i * n + j]);
    std::sort(scratch.begin(), scratch.end());
    double sum = 0.0;
    for (std::size_t k = 0; k < neighbors && k < scratch.size(); ++k)
      sum += scratch[k];
    score[i] = sum;
  }

  // Select the best-scoring models, ties broken by model index, then
  // average the selection in model-index order.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (score[a] != score[b]) return score[a] < score[b];
              return a < b;
            });
  const std::size_t select =
      std::min<std::size_t>(std::max<std::size_t>(select_count, 1), n);
  std::vector<std::size_t> chosen(order.begin(),
                                  order.begin() +
                                      static_cast<std::ptrdiff_t>(select));
  std::sort(chosen.begin(), chosen.end());

  const double inv = 1.0 / static_cast<double>(chosen.size());
  std::vector<double> global(dim, 0.0);
  for_each_column(dim, chosen.size(), parallel_for, [&](std::size_t i) {
    double sum = 0.0;
    for (const std::size_t m : chosen) sum += models[m][i];
    global[i] = sum * inv;
  });
  return global;
}

std::vector<double> aggregate_krum(
    const std::vector<std::vector<double>>& models,
    std::size_t byzantine_count, std::size_t select_count) {
  return aggregate_krum(models, byzantine_count, select_count,
                        util::ParallelFor{});
}

std::vector<double> aggregate_with_mode(
    AggregationMode mode, const std::vector<std::vector<double>>& models,
    std::span<const double> weights,
    const std::optional<std::size_t>& trim_override,
    const util::ParallelFor& parallel_for, AggregateOutcome& outcome) {
  switch (mode) {
    case AggregationMode::kUnweightedMean:
      return average_unweighted(models, parallel_for);
    case AggregationMode::kSampleWeighted:
      return average_weighted(models, weights, parallel_for);
    case AggregationMode::kCoordinateMedian:
      return aggregate_median(models, parallel_for);
    case AggregationMode::kTrimmedMean: {
      // ~20% trimmed by default; degrades to the plain mean below three
      // clients. Dropouts can make any requested trim infeasible mid-run,
      // so the effective (clamped) value is recorded in the outcome instead
      // of aborting the round.
      const std::size_t requested =
          trim_override.has_value()
              ? *trim_override
              : (models.size() >= 3
                     ? std::max<std::size_t>(1, models.size() / 5)
                     : 0);
      outcome.trim_count = clamp_trim_count(requested, models.size());
      outcome.trim_clamped = outcome.trim_count != requested;
      return aggregate_trimmed_mean(models, outcome.trim_count, parallel_for);
    }
    case AggregationMode::kKrum:
    case AggregationMode::kMultiKrum: {
      // Budget a quarter of the surviving uploads as potentially Byzantine
      // (aggregate_krum clamps further when the survivor set is small).
      const std::size_t f = models.size() / 4;
      const std::size_t select =
          mode == AggregationMode::kKrum
              ? 1
              : (models.size() > f + 2 ? models.size() - f - 2
                                       : std::size_t{1});
      return aggregate_krum(models, f, select, parallel_for);
    }
  }
  FEDPOWER_ASSERT(false);  // unreachable: all enumerators handled above
  return {};
}

}  // namespace fedpower::fed
