// Pluggable wire encodings for model payloads.
//
// The paper ships float32 weights (2.8 kB per transfer, §IV-C). For
// narrower uplinks the quantized codec packs the same model into ~1/4 of
// the bytes using affine int8 quantization; the compression ablation bench
// measures what that costs in learning quality.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fedpower::fed {

class ModelCodec {
 public:
  virtual ~ModelCodec() = default;

  virtual std::vector<std::uint8_t> encode(
      std::span<const double> params) const = 0;

  /// Throws std::invalid_argument on malformed payloads.
  virtual std::vector<double> decode(
      std::span<const std::uint8_t> payload) const = 0;

  /// Payload size for a given parameter count.
  virtual std::size_t payload_size(std::size_t param_count) const = 0;

  virtual std::string name() const = 0;
};

/// Little-endian IEEE-754 float32 (the paper's format); delegates to
/// nn/serialize.hpp.
class Float32Codec final : public ModelCodec {
 public:
  std::vector<std::uint8_t> encode(
      std::span<const double> params) const override;
  std::vector<double> decode(
      std::span<const std::uint8_t> payload) const override;
  std::size_t payload_size(std::size_t param_count) const override;
  std::string name() const override { return "float32"; }

  /// Process-wide instance (codecs are stateless).
  static const Float32Codec& instance();
};

/// Affine uint8 quantization with a per-payload [min, max] range.
/// Layout: "FPQ8" magic, u16 version, u16 reserved, u32 count,
/// f32 min, f32 max, then count bytes.
class QuantizedCodec final : public ModelCodec {
 public:
  std::vector<std::uint8_t> encode(
      std::span<const double> params) const override;
  std::vector<double> decode(
      std::span<const std::uint8_t> payload) const override;
  std::size_t payload_size(std::size_t param_count) const override;
  std::string name() const override { return "int8"; }

  /// Worst-case absolute round-trip error for values in [lo, hi].
  static double max_error(double lo, double hi) noexcept {
    return (hi - lo) / 255.0 / 2.0;
  }

  static const QuantizedCodec& instance();
};

}  // namespace fedpower::fed
