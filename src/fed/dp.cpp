#include "fed/dp.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fedpower::fed {

double l2_norm(std::span<const double> v) noexcept {
  double sum_sq = 0.0;
  for (const double x : v) sum_sq += x * x;
  return std::sqrt(sum_sq);
}

std::vector<double> clip_to_norm(std::vector<double> v, double max_norm) {
  FEDPOWER_EXPECTS(max_norm > 0.0);
  const double norm = l2_norm(v);
  if (norm > max_norm) {
    const double scale = max_norm / norm;
    for (double& x : v) x *= scale;
  }
  return v;
}

DpClient::DpClient(FederatedClient* inner, DpConfig config)
    : inner_(inner), config_(config), rng_(config.seed) {
  FEDPOWER_EXPECTS(inner != nullptr);
  FEDPOWER_EXPECTS(config.clip_norm > 0.0);
  FEDPOWER_EXPECTS(config.noise_multiplier >= 0.0);
}

void DpClient::receive_global(std::span<const double> params) {
  anchor_.assign(params.begin(), params.end());
  inner_->receive_global(params);
}

std::vector<double> DpClient::local_parameters() const {
  const std::vector<double> raw = inner_->local_parameters();
  if (anchor_.empty()) {
    // No global model received yet (round 0 initialization): nothing to
    // privatize an update against; upload as-is.
    last_update_norm_ = 0.0;
    return raw;
  }
  FEDPOWER_EXPECTS(raw.size() == anchor_.size());
  std::vector<double> update(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i)
    update[i] = raw[i] - anchor_[i];
  last_update_norm_ = l2_norm(update);
  update = clip_to_norm(std::move(update), config_.clip_norm);
  if (config_.noise_multiplier > 0.0) {
    const double sigma = config_.noise_multiplier * config_.clip_norm;
    for (double& x : update) x += rng_.normal(0.0, sigma);
  }
  std::vector<double> upload(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i)
    upload[i] = anchor_[i] + update[i];
  return upload;
}

}  // namespace fedpower::fed
