#include "fed/secure_agg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace fedpower::fed {

SecureAggregationSession::SecureAggregationSession(std::size_t client_count,
                                                   std::size_t dimension,
                                                   std::uint64_t round_secret,
                                                   SecureAggConfig config)
    : client_count_(client_count),
      dimension_(dimension),
      round_secret_(round_secret),
      config_(config) {
  FEDPOWER_EXPECTS(client_count >= 2);
  FEDPOWER_EXPECTS(dimension > 0);
  FEDPOWER_EXPECTS(config.clip > 0.0);
  FEDPOWER_EXPECTS(config.resolution > 0.0);
}

std::vector<std::uint64_t> SecureAggregationSession::pair_mask(
    std::size_t a, std::size_t b) const {
  FEDPOWER_EXPECTS(a < b && b < client_count_);
  // Derive the pairwise stream from (round_secret, a, b).
  std::uint64_t seed = round_secret_;
  seed ^= 0x9e3779b97f4a7c15ULL * (a + 1);
  seed ^= 0xbf58476d1ce4e5b9ULL * (b + 1);
  util::Rng rng(seed);
  std::vector<std::uint64_t> mask(dimension_);
  for (auto& m : mask) m = rng.next_u64();
  return mask;
}

std::vector<std::uint64_t> SecureAggregationSession::masked_payload(
    std::size_t client, std::span<const double> params) const {
  FEDPOWER_EXPECTS(client < client_count_);
  FEDPOWER_EXPECTS(params.size() == dimension_);

  std::vector<std::uint64_t> payload(dimension_);
  for (std::size_t i = 0; i < dimension_; ++i) {
    const double clamped =
        std::clamp(params[i], -config_.clip, config_.clip);
    const auto fixed =
        static_cast<std::int64_t>(std::llround(clamped / config_.resolution));
    payload[i] = static_cast<std::uint64_t>(fixed);  // two's complement
  }

  for (std::size_t other = 0; other < client_count_; ++other) {
    if (other == client) continue;
    const std::size_t a = std::min(client, other);
    const std::size_t b = std::max(client, other);
    const std::vector<std::uint64_t> mask = pair_mask(a, b);
    for (std::size_t i = 0; i < dimension_; ++i) {
      if (client == a)
        payload[i] += mask[i];  // wraps mod 2^64 by design
      else
        payload[i] -= mask[i];
    }
  }
  return payload;
}

std::vector<double> SecureAggregationSession::unmask_mean(
    const std::vector<std::vector<std::uint64_t>>& payloads) const {
  if (payloads.size() != client_count_)
    throw std::invalid_argument(
        "secure aggregation requires one payload per client (no dropout)");
  for (const auto& payload : payloads)
    if (payload.size() != dimension_)
      throw std::invalid_argument("secure aggregation payload size mismatch");

  std::vector<double> mean(dimension_);
  for (std::size_t i = 0; i < dimension_; ++i) {
    std::uint64_t sum = 0;
    for (const auto& payload : payloads) sum += payload[i];  // masks cancel
    const auto total = static_cast<std::int64_t>(sum);
    mean[i] = static_cast<double>(total) * config_.resolution /
              static_cast<double>(client_count_);
  }
  return mean;
}

}  // namespace fedpower::fed
