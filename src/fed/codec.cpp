#include "fed/codec.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "util/assert.hpp"

namespace fedpower::fed {

std::vector<std::uint8_t> Float32Codec::encode(
    std::span<const double> params) const {
  return nn::encode_parameters(params);
}

std::vector<double> Float32Codec::decode(
    std::span<const std::uint8_t> payload) const {
  return nn::decode_parameters(payload);
}

std::size_t Float32Codec::payload_size(std::size_t param_count) const {
  return nn::payload_size(param_count);
}

const Float32Codec& Float32Codec::instance() {
  static const Float32Codec codec;
  return codec;
}

namespace {

constexpr std::uint8_t kQuantMagic[4] = {'F', 'P', 'Q', '8'};
constexpr std::uint16_t kQuantVersion = 1;
constexpr std::size_t kQuantHeaderBytes = 4 + 2 + 2 + 4 + 4 + 4;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | in[offset + static_cast<std::size_t>(i)];
  return v;
}

float get_f32(std::span<const std::uint8_t> in, std::size_t offset) {
  return std::bit_cast<float>(get_u32(in, offset));
}

}  // namespace

std::size_t QuantizedCodec::payload_size(std::size_t param_count) const {
  return kQuantHeaderBytes + param_count;
}

std::vector<std::uint8_t> QuantizedCodec::encode(
    std::span<const double> params) const {
  FEDPOWER_EXPECTS(params.size() <= std::numeric_limits<std::uint32_t>::max());
  double lo = 0.0;
  double hi = 0.0;
  if (!params.empty()) {
    lo = *std::min_element(params.begin(), params.end());
    hi = *std::max_element(params.begin(), params.end());
  }
  // Degenerate constant payload: widen the range by an amount that is
  // still representable after the bounds are stored as float32.
  if (hi <= lo) hi = lo + std::max(1e-6, std::abs(lo) * 1e-5);

  std::vector<std::uint8_t> out;
  out.reserve(payload_size(params.size()));
  out.insert(out.end(), std::begin(kQuantMagic), std::end(kQuantMagic));
  put_u16(out, kQuantVersion);
  put_u16(out, 0);
  put_u32(out, static_cast<std::uint32_t>(params.size()));
  put_f32(out, static_cast<float>(lo));
  put_f32(out, static_cast<float>(hi));
  const double scale = 255.0 / (hi - lo);
  for (const double p : params) {
    const double clamped = std::clamp(p, lo, hi);
    const double q = (clamped - lo) * scale;
    out.push_back(static_cast<std::uint8_t>(q + 0.5));
  }
  return out;
}

std::vector<double> QuantizedCodec::decode(
    std::span<const std::uint8_t> payload) const {
  if (payload.size() < kQuantHeaderBytes)
    throw std::invalid_argument("quantized payload truncated (header)");
  if (std::memcmp(payload.data(), kQuantMagic, sizeof kQuantMagic) != 0)
    throw std::invalid_argument("quantized payload has bad magic");
  const std::uint32_t count = get_u32(payload, 8);
  if (payload.size() != payload_size(count))
    throw std::invalid_argument("quantized payload length mismatch");
  const double lo = static_cast<double>(get_f32(payload, 12));
  const double hi = static_cast<double>(get_f32(payload, 16));
  if (!(hi > lo))
    throw std::invalid_argument("quantized payload has invalid range");
  const double scale = (hi - lo) / 255.0;
  std::vector<double> params(count);
  for (std::uint32_t i = 0; i < count; ++i)
    params[i] = lo + scale * payload[kQuantHeaderBytes + i];
  return params;
}

const QuantizedCodec& QuantizedCodec::instance() {
  static const QuantizedCodec codec;
  return codec;
}

}  // namespace fedpower::fed
