// Two-tier (hierarchical) federated averaging: edge aggregators between
// the devices and the global server (DESIGN.md §11).
//
// Fleets past a few thousand devices cannot upload to one server: the
// paper's single-server Algorithm 2 is re-staged as a static two-tier
// topology. Each EdgeAggregator owns a contiguous shard of the fleet and
// runs an ordinary FederatedAveraging round over it — sampling, transport
// faults, Byzantine screening and reputation/quarantine are all
// shard-local, so a poisoning campaign inside one shard cannot consume
// another shard's trim budget. The edge then forwards ONE model per round
// to the global server, which combines the shard models weighted by how
// many client uploads each shard aggregated.
//
// Determinism contract: a single-shard hierarchical federation reproduces
// the flat FederatedAveraging run bit for bit — same participant draws,
// same round results, same global model trajectory. This holds because
// (a) shard 0 uses the SamplingConfig seed verbatim (further shards derive
// theirs via splitmix64), (b) shard models cross the edge tier in process
// at full double precision (the lossy float32 wire codec is used only for
// traffic accounting and fault injection on the optional edge links — edge
// aggregators are operator infrastructure, not untrusted devices), and
// (c) a round with exactly one contributing shard adopts that shard's
// model by copy instead of a weighted average of one.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "fed/federation.hpp"

namespace fedpower::fed {

/// One edge node: a contiguous client shard plus the FederatedAveraging
/// instance that runs its shard-local rounds. Owned by
/// HierarchicalFederation; exposed for inspection (reputation audits,
/// per-shard metrics).
class EdgeAggregator {
 public:
  EdgeAggregator(std::size_t shard, std::size_t first_client,
                 std::vector<FederatedClient*> clients, Transport* transport,
                 AggregationMode mode, const ModelCodec* codec);

  [[nodiscard]] std::size_t shard() const noexcept { return shard_; }
  /// Global index of the shard's first client; the shard covers
  /// [first_client, first_client + client_count).
  [[nodiscard]] std::size_t first_client() const noexcept { return first_; }
  [[nodiscard]] std::size_t client_count() const noexcept {
    return federation_->client_count();
  }

  [[nodiscard]] FederatedAveraging& federation() noexcept {
    return *federation_;
  }
  [[nodiscard]] const FederatedAveraging& federation() const noexcept {
    return *federation_;
  }

  /// Routes this shard's edge<->server transfers through the given
  /// transport (traffic accounting and fault injection only; the model
  /// itself crosses in process). nullptr (default) keeps the edge link
  /// ideal: no bytes counted, no faults possible.
  void set_edge_transport(Transport* transport) noexcept {
    edge_transport_ = transport;
  }
  [[nodiscard]] Transport* edge_transport() const noexcept {
    return edge_transport_;
  }

 private:
  std::size_t shard_;
  std::size_t first_;
  std::unique_ptr<FederatedAveraging> federation_;
  Transport* edge_transport_ = nullptr;
};

/// Per-shard outcome of one hierarchical round.
struct ShardRoundOutcome {
  std::size_t shard = 0;
  /// The shard's model entered this round's global aggregate.
  bool contributed = false;
  /// The edge downlink faulted: the shard ran its round on the stale
  /// global model it last received (the shard round itself still ran).
  bool downlink_stale = false;
  /// The shard round completed but its model was lost on the edge uplink.
  bool uplink_dropped = false;
  /// The shard round aborted below its quorum; no reputation movement, no
  /// contribution (see FederatedAveraging::set_quorum).
  bool quorum_failed = false;
  /// The shard-local round result; absent exactly when quorum_failed.
  std::optional<RoundResult> result;
};

struct HierarchicalRoundResult {
  std::size_t round = 0;
  std::vector<ShardRoundOutcome> shards;
  /// Shards whose model reached the global aggregate this round.
  std::size_t contributing_shards = 0;
  /// Edge-tier traffic only; client<->edge traffic is in the per-shard
  /// RoundResults.
  std::size_t uplink_bytes = 0;
  std::size_t downlink_bytes = 0;
};

/// The global server of the two-tier topology. API mirrors
/// FederatedAveraging; configuration calls fan out to every shard.
class HierarchicalFederation {
 public:
  /// Splits `clients` into `shard_count` contiguous shards (sizes differ by
  /// at most one; earlier shards take the remainder). Requires
  /// 1 <= shard_count <= clients.size(). The transport is shared by every
  /// client that has no per-client override, exactly as in the flat
  /// federation.
  HierarchicalFederation(std::vector<FederatedClient*> clients,
                         Transport* transport,
                         std::size_t shard_count,
                         AggregationMode mode = AggregationMode::kUnweightedMean,
                         const ModelCodec* codec = nullptr);

  /// Sets the initial global model theta_1.
  void initialize(std::vector<double> global);

  /// Configures every shard's client sampling. Shard 0 uses config.seed
  /// verbatim (the single-shard bit-identity contract); shard s > 0 derives
  /// an independent stream seed from (seed, s) via splitmix64.
  void set_sampling(const SamplingConfig& config);

  /// Per-shard quorum: each shard demands min(min_survivors, shard size)
  /// surviving uploads, with FederatedAveraging's partial-participation
  /// semantics applied shard-locally (a shard that samples fewer clients
  /// than the quorum only demands that every sampled client survive).
  void set_quorum(std::size_t min_survivors);

  /// Minimum number of shards that must contribute a model for the global
  /// round to commit; below it run_round throws QuorumError and leaves the
  /// global model and round counter untouched (shard-local rounds that
  /// completed stand — their reputation updates are not rolled back).
  /// Default 1; always at least 1.
  void set_min_contributing_shards(std::size_t min_shards);

  /// Arms an independent DefensePipeline per shard (shard-local screening,
  /// reputation and quarantine). Must precede the first round.
  void enable_defense(const DefenseConfig& config);

  /// Forwards to every shard (see FederatedAveraging::set_trim_count).
  void set_trim_count(std::size_t trim_count);

  /// Executor for shard-local training and all aggregations (shards run
  /// sequentially; each shard parallelizes internally, which preserves the
  /// bit-identity contract across thread counts).
  void set_local_executor(util::ParallelFor executor);

  /// Per-client transport override, addressed by GLOBAL client index.
  void set_client_transport(std::size_t client, Transport* transport);

  /// Edge-link transport for one shard (accounting/faults only).
  void set_edge_transport(std::size_t shard, Transport* transport);

  /// Runs one hierarchical round: per shard, edge downlink -> shard-local
  /// FederatedAveraging round -> edge uplink; then the global weighted
  /// combine (weights = each shard's aggregated upload count). Shards run
  /// in shard order.
  HierarchicalRoundResult run_round();
  void run(std::size_t rounds);

  [[nodiscard]] const std::vector<double>& global_model() const noexcept {
    return global_;
  }
  [[nodiscard]] std::size_t rounds_completed() const noexcept {
    return rounds_completed_;
  }
  [[nodiscard]] std::size_t client_count() const noexcept {
    return client_count_;
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const EdgeAggregator& shard(std::size_t s) const {
    return *shards_.at(s);
  }
  [[nodiscard]] EdgeAggregator& shard(std::size_t s) { return *shards_.at(s); }
  /// Shard that owns the given global client index.
  [[nodiscard]] std::size_t shard_of(std::size_t client) const;

  /// Serializes the two-tier server state: global model, round counter and
  /// every shard's FederatedAveraging state (tag HIER). Snapshot and
  /// federation must agree on shard count and defense arming.
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

 private:
  std::vector<std::unique_ptr<EdgeAggregator>> shards_;
  const ModelCodec* codec_;  // lint: ckpt-skip(non-owning strategy object; re-wired on resume)
  util::ParallelFor executor_;  // lint: ckpt-skip(thread pool handle; rounds are width-invariant)
  std::vector<double> global_;
  std::size_t client_count_ = 0;  // lint: ckpt-skip(derived from the shard topology at attach time)
  std::size_t rounds_completed_ = 0;
  std::size_t min_contributing_shards_ = 1;  // lint: ckpt-skip(construction config, fixed for the run)
};

}  // namespace fedpower::fed
