// Personalized federation: share the network body, keep a private head.
//
// The paper's future-work section names "varying objectives/user
// preferences" across devices. Full federated averaging forces one policy
// on everyone, which is wrong when, e.g., devices have different power
// budgets. A standard remedy (FedPer, Arivazhagan et al.) averages only a
// shared prefix of the parameter vector — the representation — while each
// device keeps its own output head that encodes its private objective.
//
// PersonalizedClient is a decorator over any FederatedClient: on
// receive_global it installs only the shared coordinates and retains the
// wrapped client's own values elsewhere. The server needs no changes (it
// may average the private coordinates too; they are simply never adopted).
#pragma once

#include <vector>

#include "fed/federation.hpp"
#include "util/assert.hpp"

namespace fedpower::fed {

class PersonalizedClient final : public FederatedClient {
 public:
  /// inner is non-owning; shared_mask[i] == true means parameter i is
  /// federated, false means it stays device-private.
  PersonalizedClient(FederatedClient* inner, std::vector<bool> shared_mask);

  void receive_global(std::span<const double> params) override;
  std::vector<double> local_parameters() const override {
    return inner_->local_parameters();
  }
  void run_local_round() override { inner_->run_local_round(); }
  std::size_t local_sample_count() const override {
    return inner_->local_sample_count();
  }

  const std::vector<bool>& shared_mask() const noexcept { return mask_; }
  std::size_t shared_count() const noexcept { return shared_count_; }

 private:
  FederatedClient* inner_;
  std::vector<bool> mask_;
  std::size_t shared_count_;
};

/// Mask for the usual split of an MLP parameter vector: everything shared
/// except the last head_params coordinates (the output layer, W then b in
/// our flat layout).
std::vector<bool> shared_body_mask(std::size_t total_params,
                                   std::size_t head_params);

}  // namespace fedpower::fed
