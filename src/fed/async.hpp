// Asynchronous federated optimization (FedAsync-style).
//
// The paper's Algorithm 2 is synchronous: the server waits for all N
// devices each round, so the fleet moves at the pace of its slowest
// member. In deployments with heterogeneous devices the standard
// alternative merges each upload the moment it arrives,
//
//   theta <- (1 - w) * theta + w * theta_client,
//   w = mixing_rate / (1 + staleness)^staleness_power,
//
// where staleness counts how many server updates happened since the client
// fetched the model it trained on. AsyncFederation simulates a fleet on a
// discrete tick clock: a client with period p completes one local round
// every p ticks.
#pragma once

#include <cstddef>
#include <vector>

#include "fed/federation.hpp"

namespace fedpower::fed {

struct AsyncConfig {
  /// Base mixing rate for a fresh (staleness 0) update.
  double mixing_rate = 0.5;
  /// Exponent of the polynomial staleness discount.
  double staleness_power = 1.0;
};

struct AsyncStats {
  std::size_t merges = 0;            ///< uploads merged into the global
  std::size_t server_version = 0;    ///< times the global model changed
  std::size_t dropouts = 0;          ///< client rounds lost to transport faults
  double max_staleness = 0.0;        ///< worst staleness seen
  double mean_staleness = 0.0;       ///< average staleness over merges
};

class AsyncFederation {
 public:
  /// clients[i] completes one local round every periods[i] ticks
  /// (period >= 1; 1 = fastest). Clients and transport are non-owning.
  AsyncFederation(std::vector<FederatedClient*> clients,
                  std::vector<std::size_t> periods, Transport* transport,
                  AsyncConfig config = {});

  /// Sets the initial global model; every client immediately fetches it.
  void initialize(std::vector<double> global);

  /// Runs local training through the given executor: all clients whose
  /// period divides a tick train concurrently (one client = one task, with
  /// a barrier), then their uploads merge serially in client-index order —
  /// exactly the order the serial path uses, so results are bit-identical
  /// (clients train on their last-fetched model, never on the same-tick
  /// merges of their peers). Large models also shard the merge loop across
  /// the executor. Empty executor (the default) = serial.
  void set_local_executor(util::ParallelFor executor);

  /// Advances the tick clock by n ticks; clients whose period divides the
  /// tick complete a round (train on their last-fetched model, upload,
  /// get merged, fetch the fresh global). A client whose upload faults
  /// loses that round (counted in AsyncStats::dropouts) and retries from
  /// its stale base at its next period; the fleet keeps ticking.
  void run_ticks(std::size_t n);

  const std::vector<double>& global_model() const noexcept { return global_; }
  const AsyncStats& stats() const noexcept { return stats_; }
  std::size_t ticks() const noexcept { return tick_; }

 private:
  void finish_round(std::size_t client);

  std::vector<FederatedClient*> clients_;
  std::vector<std::size_t> periods_;
  Transport* transport_;
  AsyncConfig config_;
  util::ParallelFor executor_;  ///< empty = serial local rounds
  std::vector<double> global_;
  /// Server version each client's in-progress round is based on.
  std::vector<std::size_t> base_version_;
  AsyncStats stats_;
  double staleness_sum_ = 0.0;
  std::size_t tick_ = 0;
};

}  // namespace fedpower::fed
