#include "fed/defense.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/errors.hpp"
#include "util/assert.hpp"

namespace fedpower::fed {

// l2_norm is defined in dp.cpp (the DP clipping path needed it first);
// defense.hpp re-declares it as a shared screening primitive.

bool any_non_finite(std::span<const double> values) {
  for (const double v : values)
    if (!std::isfinite(v)) return true;
  return false;
}

double robust_median(std::vector<double> scratch) {
  FEDPOWER_EXPECTS(!scratch.empty());
  const std::size_t mid = scratch.size() / 2;
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(mid),
                   scratch.end());
  if (scratch.size() % 2 == 1) return scratch[mid];
  const double upper = scratch[mid];
  const double lower = *std::max_element(
      scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lower + upper) / 2.0;
}

namespace {

/// L2 norm of the element-wise difference a - b, accumulated in coordinate
/// order (the documented model-order FP contract, DESIGN.md §8 L3).
double update_norm(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

/// Cosine distance 1 - cos(a, b) in [0, 2]; 0 when either vector is ~zero
/// (no direction to compare — the caller's warm-up guard covers that case).
double cosine_distance(std::span<const double> a, std::span<const double> b) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace

DefensePipeline::DefensePipeline(DefenseConfig config,
                                 std::size_t client_count)
    : config_(config) {
  FEDPOWER_EXPECTS(client_count >= 1);
  FEDPOWER_EXPECTS(config_.norm_clip_multiplier > 0.0);
  FEDPOWER_EXPECTS(config_.norm_screen_multiplier >=
                   config_.norm_clip_multiplier);
  FEDPOWER_EXPECTS(config_.cosine_max_distance >= 0.0 &&
                   config_.cosine_max_distance <= 2.0);
  FEDPOWER_EXPECTS(config_.norm_history >= 1);
  FEDPOWER_EXPECTS(config_.fail_penalty >= 0.0);
  FEDPOWER_EXPECTS(config_.pass_credit >= 0.0);
  FEDPOWER_EXPECTS(config_.probation_rounds >= 1);
  clients_.assign(client_count, ClientState{config_.initial_reputation,
                                            false, 0, 0, 0});
  norm_history_.reserve(config_.norm_history);
}

bool DefensePipeline::quarantined(std::size_t client) const {
  FEDPOWER_EXPECTS(client < clients_.size());
  return clients_[client].quarantined;
}

double DefensePipeline::reputation(std::size_t client) const {
  FEDPOWER_EXPECTS(client < clients_.size());
  return clients_[client].reputation;
}

std::size_t DefensePipeline::quarantined_count() const noexcept {
  std::size_t count = 0;
  for (const ClientState& state : clients_)
    if (state.quarantined) ++count;
  return count;
}

bool DefensePipeline::norm_screen_armed() const noexcept {
  return rounds_ >= config_.warmup_rounds &&
         norm_history_.size() >= config_.norm_min_samples;
}

double DefensePipeline::norm_history_median() const {
  // Copy + nth_element over a bounded ring: deterministic and O(window).
  return robust_median(norm_history_);
}

ScreenObservation DefensePipeline::screen(
    std::size_t client, std::vector<double>& upload,
    std::span<const double> previous_global) const {
  FEDPOWER_EXPECTS(client < clients_.size());
  FEDPOWER_EXPECTS(upload.size() == previous_global.size());
  ScreenObservation obs;
  obs.client = client;
  obs.accepted_norm = update_norm(upload, previous_global);

  // Cosine screen: a model pointing away from the broadcast it was trained
  // from (sign flip, heavy rotation) is hostile regardless of its norm.
  // Armed only after warm-up — the very first global models are
  // near-random, so direction carries no signal yet.
  if (rounds_ >= config_.warmup_rounds &&
      cosine_distance(upload, previous_global) >
          config_.cosine_max_distance) {
    obs.verdict = ScreenVerdict::kCosineReject;
    return obs;
  }

  if (!norm_screen_armed()) {
    obs.verdict = ScreenVerdict::kAccepted;
    return obs;
  }

  const double median = norm_history_median();
  if (median <= 0.0) {
    obs.verdict = ScreenVerdict::kAccepted;
    return obs;
  }
  const double norm = obs.accepted_norm;
  if (norm > config_.norm_screen_multiplier * median) {
    obs.verdict = ScreenVerdict::kNormReject;
    return obs;
  }
  if (norm > config_.norm_clip_multiplier * median) {
    // Clip the update back onto the norm envelope: the direction survives,
    // the magnitude is bounded by what honest clients recently produced.
    const double target = config_.norm_clip_multiplier * median;
    const double scale = target / norm;
    for (std::size_t i = 0; i < upload.size(); ++i)
      upload[i] = previous_global[i] +
                  (upload[i] - previous_global[i]) * scale;
    obs.verdict = ScreenVerdict::kClipped;
    obs.accepted_norm = target;
    return obs;
  }
  obs.verdict = ScreenVerdict::kAccepted;
  return obs;
}

ScreenObservation DefensePipeline::non_finite(std::size_t client) const {
  FEDPOWER_EXPECTS(client < clients_.size());
  ScreenObservation obs;
  obs.client = client;
  obs.verdict = ScreenVerdict::kNonFinite;
  obs.accepted_norm = 0.0;
  return obs;
}

DefenseRoundLog DefensePipeline::commit_round(
    const std::vector<ScreenObservation>& observations) {
  DefenseRoundLog log;
  for (const ScreenObservation& obs : observations) {
    FEDPOWER_EXPECTS(obs.client < clients_.size());
    ClientState& state = clients_[obs.client];
    const bool clean = obs.verdict == ScreenVerdict::kAccepted ||
                       obs.verdict == ScreenVerdict::kClipped;
    if (state.quarantined) {
      // Probation: the upload was screened but never aggregated. Clean
      // streaks of probation_rounds earn re-admission starting next round.
      if (clean) {
        ++state.probation_streak;
        if (state.probation_streak >=
            static_cast<std::uint64_t>(config_.probation_rounds)) {
          state.quarantined = false;
          state.probation_streak = 0;
          state.reputation = config_.readmit_reputation;
          ++state.readmissions;
          log.readmitted.push_back(obs.client);
        }
      } else {
        state.probation_streak = 0;
        ++state.screened_total;
      }
      continue;
    }
    if (clean) {
      state.reputation =
          std::min(1.0, state.reputation + config_.pass_credit);
      if (obs.verdict == ScreenVerdict::kClipped) ++log.clipped;
      // Record the accepted norm in the ring (clipped entries record the
      // envelope they were clipped to).
      if (norm_history_.size() < config_.norm_history) {
        norm_history_.push_back(obs.accepted_norm);
      } else {
        norm_history_[norm_cursor_] = obs.accepted_norm;
        norm_cursor_ = (norm_cursor_ + 1) % config_.norm_history;
      }
    } else {
      state.reputation -= config_.fail_penalty;
      ++state.screened_total;
      log.screened.push_back(obs.client);
      if (state.reputation < config_.quarantine_threshold) {
        state.quarantined = true;
        state.probation_streak = 0;
        log.newly_quarantined.push_back(obs.client);
      }
    }
  }
  ++rounds_;
  return log;
}

namespace {
constexpr ckpt::Tag kDefenseTag{'D', 'F', 'N', 'S'};
}  // namespace

void DefensePipeline::save_state(ckpt::Writer& out) const {
  write_tag(out, kDefenseTag);
  out.u64(clients_.size());
  out.u64(rounds_);
  for (const ClientState& state : clients_) {
    out.f64(state.reputation);
    out.u8(state.quarantined ? 1 : 0);
    out.u64(state.probation_streak);
    out.u64(state.screened_total);
    out.u64(state.readmissions);
  }
  out.vec_f64(norm_history_);
  out.u64(norm_cursor_);
}

void DefensePipeline::restore_state(ckpt::Reader& in) {
  expect_tag(in, kDefenseTag, "defense pipeline");
  const std::uint64_t client_count = in.u64();
  if (client_count != clients_.size())
    throw ckpt::StateMismatchError(
        "defense snapshot was taken with " + std::to_string(client_count) +
        " client(s), this pipeline tracks " +
        std::to_string(clients_.size()));
  rounds_ = in.u64();
  for (ClientState& state : clients_) {
    state.reputation = in.f64();
    state.quarantined = in.u8() != 0;
    state.probation_streak = in.u64();
    state.screened_total = in.u64();
    state.readmissions = in.u64();
  }
  norm_history_ = in.vec_f64();
  if (norm_history_.size() > config_.norm_history)
    throw ckpt::StateMismatchError(
        "defense snapshot norm history exceeds this config's window");
  norm_cursor_ = in.u64();
  if (norm_cursor_ >= std::max<std::size_t>(1, config_.norm_history))
    throw ckpt::StateMismatchError(
        "defense snapshot norm-history cursor is out of range");
}

}  // namespace fedpower::fed
