// Differentially private federated updates (DP-FedAvg style).
//
// Sharing model weights leaks less than sharing traces, but gradients can
// still memorize training data. The standard hardening is to privatize the
// per-round *update*: clip its L2 norm to a bound C and add Gaussian noise
// z * C before upload. DpClient decorates any FederatedClient with exactly
// that; the privacy/utility trade-off is measured in
// bench_ablation_privacy.
#pragma once

#include <span>
#include <vector>

#include "fed/federation.hpp"
#include "util/rng.hpp"

namespace fedpower::fed {

struct DpConfig {
  /// L2 clipping bound for the round update (theta_local - theta_global).
  double clip_norm = 1.0;
  /// Gaussian noise standard deviation as a multiple of clip_norm;
  /// 0 disables noise (clipping still applies).
  double noise_multiplier = 0.0;
  std::uint64_t seed = 0;
};

/// L2 norm of a vector.
[[nodiscard]] double l2_norm(std::span<const double> v) noexcept;

/// Returns v scaled so its L2 norm is at most max_norm (identity if it
/// already is). Requires max_norm > 0.
[[nodiscard]] std::vector<double> clip_to_norm(std::vector<double> v, double max_norm);

class DpClient final : public FederatedClient {
 public:
  /// inner is non-owning and must outlive the decorator.
  DpClient(FederatedClient* inner, DpConfig config);

  void receive_global(std::span<const double> params) override;
  std::vector<double> local_parameters() const override;
  void run_local_round() override { inner_->run_local_round(); }
  std::size_t local_sample_count() const override {
    return inner_->local_sample_count();
  }

  /// L2 norm of the most recent raw (pre-clip) update; 0 before the first
  /// upload. Exposed for tests and calibration of clip_norm.
  [[nodiscard]] double last_update_norm() const noexcept { return last_update_norm_; }

  [[nodiscard]] const DpConfig& config() const noexcept { return config_; }

 private:
  FederatedClient* inner_;
  DpConfig config_;
  mutable util::Rng rng_;
  std::vector<double> anchor_;  // last received global model
  mutable double last_update_norm_ = 0.0;
};

}  // namespace fedpower::fed
