// A real TCP implementation of the Transport interface.
//
// The in-process transport is what the benchmarks use (deterministic, no
// kernel in the loop); this one moves the same framed payloads through an
// actual loopback/remote TCP connection, demonstrating that the federation
// logic is genuinely transport-agnostic. Framing: u32 length (LE) +
// u8 direction + payload bytes; the peer echoes the frame back as the
// delivery acknowledgement carrying the payload.
//
// TcpReflector is the matching peer: a minimal echo server that accepts
// sequential connections and reflects every frame. In a production
// deployment the aggregation server would sit behind the same framing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fed/transport.hpp"

namespace fedpower::fed {

/// Minimal frame-echo TCP server bound to 127.0.0.1 on an ephemeral port.
class TcpReflector {
 public:
  /// Binds, listens and starts the accept thread; throws std::runtime_error
  /// on socket errors.
  TcpReflector();
  ~TcpReflector();

  TcpReflector(const TcpReflector&) = delete;
  TcpReflector& operator=(const TcpReflector&) = delete;

  /// Port the reflector listens on.
  std::uint16_t port() const noexcept { return port_; }

  /// Frames echoed so far (across all connections).
  std::size_t frames_served() const noexcept { return frames_.load(); }

  /// Stops accepting and joins the server thread (idempotent).
  void stop();

 private:
  void serve();

  int listener_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> frames_{0};
  std::thread thread_;
};

/// Transport that frames payloads over one TCP connection. Not thread-safe
/// (matching FederatedAveraging's single-threaded round loop).
class TcpTransport final : public Transport {
 public:
  /// Connects to host:port; throws std::runtime_error on failure.
  TcpTransport(const std::string& host, std::uint16_t port);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  std::vector<std::uint8_t> transfer(
      Direction direction, std::vector<std::uint8_t> payload) override;

  const TrafficStats& stats() const noexcept override { return stats_; }

 private:
  int socket_ = -1;
  TrafficStats stats_;
};

}  // namespace fedpower::fed
