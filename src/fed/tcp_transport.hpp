// A real TCP implementation of the Transport interface.
//
// The in-process transport is what the benchmarks use (deterministic, no
// kernel in the loop); this one moves the same framed payloads through an
// actual loopback/remote TCP connection, demonstrating that the federation
// logic is genuinely transport-agnostic. Framing: u32 length (LE) +
// u8 direction + payload bytes; the peer echoes the frame back as the
// delivery acknowledgement carrying the payload.
//
// Failure model (DESIGN.md §6): every connection-level fault — peer close,
// EPIPE, timeout, refused reconnect — surfaces as fed::TransportError, never
// as process death. Sends use MSG_NOSIGNAL (no SIGPIPE), reads and writes
// retry EINTR, both directions honour SO_RCVTIMEO/SO_SNDTIMEO, and a failed
// transfer is retried over a fresh connection with bounded exponential
// backoff before the error propagates.
//
// TcpReflector is the matching peer: an echo server that serves each
// accepted connection on its own handler thread, so N federated clients can
// hold N live connections concurrently. Finished handlers are reaped by the
// accept loop, so a long-lived reflector holds one thread per *live*
// connection, not one per connection ever accepted. In a production
// deployment the aggregation server sits behind the same framing via the
// serve subsystem's epoll front end (serve/epoll_server.hpp), which scales
// past thread-per-connection. For tests the reflector can deterministically
// kill one connection after a chosen number of frames (inject_close) or
// refuse new connections entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "fed/transport.hpp"

namespace fedpower::fed {

/// Serializes v into out[0..3] little-endian, independent of host order.
void store_u32_le(std::uint32_t v, std::uint8_t* out) noexcept;

/// Reads a little-endian u32 from in[0..3].
std::uint32_t load_u32_le(const std::uint8_t* in) noexcept;

/// Builds a complete wire frame: u32 LE length of (direction byte +
/// payload), the direction byte (0 = uplink, 1 = downlink), the payload.
std::vector<std::uint8_t> encode_frame(Direction direction,
                                       std::span<const std::uint8_t> payload);

/// Largest frame either side will accept (protocol sanity bound).
inline constexpr std::size_t kMaxFrameBytes = 64 * 1024 * 1024;

/// Minimal frame-echo TCP server bound to 127.0.0.1 on an ephemeral port.
class TcpReflector {
 public:
  /// Binds, listens and starts the accept thread; throws TransportError
  /// on socket errors.
  TcpReflector();
  ~TcpReflector();

  TcpReflector(const TcpReflector&) = delete;
  TcpReflector& operator=(const TcpReflector&) = delete;

  /// Port the reflector listens on.
  std::uint16_t port() const noexcept { return port_; }

  /// Frames echoed so far (across all connections).
  std::size_t frames_served() const noexcept { return frames_.load(); }

  /// Connections accepted so far (accept order = connection index).
  std::size_t connections_accepted() const noexcept {
    return accepted_.load();
  }

  /// Test fault hook: the connection_index-th accepted connection echoes
  /// exactly after_frames frames, then dies on the next incoming frame
  /// without echoing — the client sees a mid-exchange connection loss.
  void inject_close(std::size_t connection_index, std::size_t after_frames) {
    fault_after_frames_.store(after_frames);
    fault_connection_.store(connection_index);
  }

  /// Test fault hook: when true, accepted connections are closed
  /// immediately, so every client transfer (and reconnect) fails.
  void refuse_new_connections(bool refuse) { refuse_.store(refuse); }

  /// Stops accepting, disconnects all clients and joins every server
  /// thread (idempotent).
  void stop();

  /// Handler threads still alive (reaps finished ones first). Bounded by
  /// the number of live connections — the accept loop reaps completed
  /// handlers before admitting a new one, so soaks do not accumulate one
  /// thread per connection ever accepted.
  std::size_t live_handler_count();

 private:
  struct Handler {
    std::thread thread;
    int fd = -1;
    /// Set by the handler as its last action; a true flag means join()
    /// cannot block, so the accept loop may reap inline.
    std::shared_ptr<std::atomic<bool>> done;
  };

  void serve();
  void handle(int conn, std::size_t index);
  void reap_finished_locked();

  int listener_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> refuse_{false};
  std::atomic<std::size_t> frames_{0};
  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> fault_connection_{
      std::numeric_limits<std::size_t>::max()};
  std::atomic<std::size_t> fault_after_frames_{0};
  std::thread thread_;
  std::mutex mutex_;  ///< guards handlers_
  std::vector<Handler> handlers_;
};

/// Connection management knobs for TcpTransport.
struct TcpTransportConfig {
  /// Wall-clock bound on establishing a connection (poll on the
  /// non-blocking connect); <= 0 waits indefinitely.
  double connect_timeout_s = 5.0;
  /// Per-syscall read/write bound via SO_RCVTIMEO/SO_SNDTIMEO; <= 0
  /// disables the timeouts.
  double io_timeout_s = 5.0;
  /// Total delivery tries per transfer (1 = fail on the first fault).
  std::size_t max_attempts = 3;
  /// Exponential backoff between retries: initial delay, growth factor
  /// and cap.
  double backoff_initial_s = 0.01;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 0.5;
};

/// Transport that frames payloads over one TCP connection, reconnecting
/// with bounded exponential backoff when the connection faults. Not
/// thread-safe (matching FederatedAveraging's single-threaded round loop).
class TcpTransport final : public Transport {
 public:
  /// Connects to host:port; throws TransportError on failure.
  TcpTransport(const std::string& host, std::uint16_t port,
               TcpTransportConfig config = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Delivers the payload, reconnecting and retrying on connection faults
  /// up to config.max_attempts; throws TransportError once exhausted.
  std::vector<std::uint8_t> transfer(
      Direction direction, std::vector<std::uint8_t> payload) override;

  const TrafficStats& stats() const noexcept override { return stats_; }

  /// True while a connection is established (a failed transfer leaves the
  /// transport disconnected until the next transfer reconnects).
  bool connected() const noexcept { return socket_ >= 0; }

 private:
  void connect_socket();
  void close_socket() noexcept;
  std::vector<std::uint8_t> exchange(Direction direction,
                                     const std::vector<std::uint8_t>& frame);

  std::string host_;
  std::uint16_t port_ = 0;
  TcpTransportConfig config_;
  int socket_ = -1;
  TrafficStats stats_;
};

}  // namespace fedpower::fed
