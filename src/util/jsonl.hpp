// Minimal JSON-Lines emission for per-round experiment metrics
// (run.metrics_jsonl). One object per line, flushed per line, so a killed
// run leaves every completed round's record intact and parseable — the
// format is append-only streaming telemetry, not a durable artifact (the
// checkpoint subsystem owns durability).
//
// Scope is deliberately tiny: flat objects of number/string fields, no
// nesting, no arrays — enough for `jq`/pandas to consume round metrics
// without pulling a JSON library into the tree.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "util/assert.hpp"
#include "util/csv.hpp"

namespace fedpower::util {

/// Streams flat JSON objects, one per line.
class JsonlWriter {
 public:
  /// Appends to (or creates) the given file; throws std::runtime_error on
  /// failure. Appending lets a resumed run continue the same metrics file
  /// its predecessor started.
  explicit JsonlWriter(const std::string& path)
      : file_(path, std::ios::out | std::ios::app), out_(&file_) {
    if (!file_) throw std::runtime_error("jsonl: cannot open " + path);
  }

  /// Writes into a caller-owned stream (used by tests).
  explicit JsonlWriter(std::ostream& out) : out_(&out) {}

  JsonlWriter& field(const std::string& key, double value) {
    begin_field(key);
    // %.6g matches CsvWriter; NaN/Inf are not valid JSON, so degrade to
    // null rather than emit an unparseable line.
    if (std::isfinite(value))
      *out_ << CsvWriter::format(value);
    else
      *out_ << "null";
    return *this;
  }

  JsonlWriter& field(const std::string& key, std::uint64_t value) {
    begin_field(key);
    *out_ << value;
    return *this;
  }

  JsonlWriter& field(const std::string& key, const std::string& value) {
    begin_field(key);
    *out_ << '"' << escape(value) << '"';
    return *this;
  }

  /// Closes the current object, emits the newline and flushes so the line
  /// survives a SIGKILL arriving right after the round.
  void end_line() {
    FEDPOWER_EXPECTS(open_);
    *out_ << "}\n";
    out_->flush();
    open_ = false;
  }

 private:
  void begin_field(const std::string& key) {
    if (!open_) {
      *out_ << '{';
      open_ = true;
    } else {
      *out_ << ',';
    }
    *out_ << '"' << escape(key) << "\":";
  }

  static std::string escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        case '\r':
          out += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c) & 0xff);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::ofstream file_;
  std::ostream* out_ = nullptr;
  bool open_ = false;  ///< an object is open on the current line
};

/// Current resident set size in bytes (VmRSS from /proc/self/status);
/// returns 0 off-Linux or on parse failure. Telemetry only — never feeds
/// results.
inline std::uint64_t resident_bytes() {
  std::ifstream status("/proc/self/status");
  std::string token;
  while (status >> token) {
    if (token == "VmRSS:") {
      std::uint64_t kib = 0;
      status >> kib;
      return kib * 1024;
    }
  }
  return 0;
}

}  // namespace fedpower::util
