// Minimal INI-style configuration files for the experiment binaries.
//
// Format:
//   # comment            ; comment
//   [section]
//   key = value          -> stored as "section.key"
//   list = a, b, c       -> get_list splits on commas
//
// Keys are case-sensitive; later assignments override earlier ones.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace fedpower::util {

class Config {
 public:
  Config() = default;

  /// Parses a config stream; throws std::invalid_argument with a line
  /// number on syntax errors.
  static Config parse(std::istream& in);

  /// Loads from a file path; throws std::runtime_error if unreadable.
  static Config load(const std::string& path);

  bool has(const std::string& key) const noexcept;

  /// Raw string (fallback when the key is absent).
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;

  /// Typed getters; throw std::invalid_argument when the stored value does
  /// not parse as the requested type.
  double get_double(const std::string& key, double fallback) const;
  long get_int(const std::string& key, long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated list with per-item trimming; empty items dropped.
  std::vector<std::string> get_list(const std::string& key) const;

  /// All keys in lexicographic order.
  std::vector<std::string> keys() const;

  /// Sets/overrides a value programmatically (used by tests and by CLI
  /// "key=value" overrides).
  void set(const std::string& key, const std::string& value);

  std::size_t size() const noexcept { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace fedpower::util
