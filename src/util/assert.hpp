// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6/I.8). Violations abort with a message; checks stay on
// in release builds because every caller of this library is a simulator or
// experiment harness where silent corruption is worse than a crash.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fedpower::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "fedpower: %s violated: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace fedpower::util

#define FEDPOWER_EXPECTS(cond)                                             \
  ((cond) ? static_cast<void>(0)                                           \
          : ::fedpower::util::contract_failure("precondition", #cond,      \
                                               __FILE__, __LINE__))

#define FEDPOWER_ENSURES(cond)                                             \
  ((cond) ? static_cast<void>(0)                                           \
          : ::fedpower::util::contract_failure("postcondition", #cond,     \
                                               __FILE__, __LINE__))

#define FEDPOWER_ASSERT(cond)                                              \
  ((cond) ? static_cast<void>(0)                                           \
          : ::fedpower::util::contract_failure("invariant", #cond,         \
                                               __FILE__, __LINE__))
