// Fixed-width ASCII table rendering for benchmark output. The benches print
// the same rows the paper's tables/figures report, so the terminal output is
// directly comparable with the publication.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fedpower::util {

/// Accumulates rows of cells and renders them as an aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Row where every numeric cell is pre-formatted with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  /// Renders with column alignment and +--- separators.
  std::string to_string() const;

  /// Convenience: renders straight to a stream.
  friend std::ostream& operator<<(std::ostream& os, const AsciiTable& t);

  static std::string format(double value, int precision);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fedpower::util
