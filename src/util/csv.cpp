#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace fedpower::util {

CsvWriter::CsvWriter(const std::string& path) : file_(path) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
  out_ = &file_;
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string CsvWriter::format(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

void CsvWriter::write_row(const std::string& label,
                          const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) cells.push_back(format(v));
  write_row(cells);
}

}  // namespace fedpower::util
