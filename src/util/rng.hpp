// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit Rng (or a
// seed); there is no global RNG state. This makes experiments bit-for-bit
// reproducible across runs given the same seed (DESIGN.md §5.3).
//
// The generator is xoshiro256++ seeded via splitmix64, which is fast, has
// 256-bit state and passes BigCrush; std::mt19937 would also work but its
// seeding from a single integer is notoriously poor.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace fedpower::util {

/// Splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ pseudo-random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  // UniformRandomBitGenerator interface (usable with <algorithm>/<random>).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] int uniform_int(int lo, int hi) noexcept;

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation (stddev >= 0).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Fisher–Yates shuffle of an arbitrary random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derives an independent child generator (for per-device streams).
  [[nodiscard]] Rng split() noexcept;

  /// The raw 256-bit generator state, for checkpointing. Restoring a saved
  /// state resumes the stream exactly where it left off (normal() caches no
  /// spare, so the state array is the complete generator state).
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }

  /// Replaces the generator state. The all-zero state is a fixed point of
  /// xoshiro256++ (the generator would emit zeros forever) and is rejected.
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    FEDPOWER_EXPECTS(state[0] != 0 || state[1] != 0 || state[2] != 0 ||
                     state[3] != 0);
    state_ = state;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace fedpower::util
