// The parallel-execution contract shared by the library layers.
//
// A ParallelFor runs body(0) ... body(n-1), in any order and possibly
// concurrently, and returns only once every call has finished (it is a
// barrier). Implementations must rethrow the first exception a body raised
// after the barrier. An empty (default-constructed) ParallelFor means
// "serial": callers fall back to a plain loop, which is the exact
// pre-parallelism code path.
//
// This lives in util (the bottom layer) so that fed can accept an executor
// without depending on runtime, where the ThreadPool that produces real
// parallel executors is implemented. Determinism contract: callers may only
// hand a ParallelFor work items that touch disjoint state, so the schedule
// cannot influence results (DESIGN.md §7).
#pragma once

#include <cstddef>
#include <functional>

namespace fedpower::util {

using ParallelFor =
    std::function<void(std::size_t, const std::function<void(std::size_t)>&)>;

/// Runs the body through the executor when one is set, else inline.
inline void for_each_index(const ParallelFor& parallel_for, std::size_t n,
                           const std::function<void(std::size_t)>& body) {
  if (parallel_for) {
    parallel_for(n, body);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) body(i);
}

}  // namespace fedpower::util
