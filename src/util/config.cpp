#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fedpower::util {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void syntax_error(std::size_t line, const std::string& what) {
  throw std::invalid_argument("config line " + std::to_string(line) + ": " +
                              what);
}

}  // namespace

Config Config::parse(std::istream& in) {
  Config config;
  std::string section;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments (both styles), then whitespace.
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.erase(comment);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') syntax_error(line_no, "unterminated section");
      section = trim(line.substr(1, line.size() - 2));
      if (section.empty()) syntax_error(line_no, "empty section name");
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      syntax_error(line_no, "expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) syntax_error(line_no, "empty key");
    config.set(section.empty() ? key : section + "." + key, value);
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  return parse(in);
}

bool Config::has(const std::string& key) const noexcept {
  return values_.contains(key);
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(it->second, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "': '" + it->second +
                                "' is not a number");
  }
  if (used != it->second.size())
    throw std::invalid_argument("config key '" + key + "': '" + it->second +
                                "' is not a number");
  return value;
}

long Config::get_int(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t used = 0;
  long value = 0;
  try {
    value = std::stol(it->second, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "': '" + it->second +
                                "' is not an integer");
  }
  if (used != it->second.size())
    throw std::invalid_argument("config key '" + key + "': '" + it->second +
                                "' is not an integer");
  return value;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("config key '" + key + "': '" + it->second +
                              "' is not a boolean");
}

std::vector<std::string> Config::get_list(const std::string& key) const {
  std::vector<std::string> items;
  const auto it = values_.find(key);
  if (it == values_.end()) return items;
  std::istringstream in(it->second);
  std::string item;
  while (std::getline(in, item, ',')) {
    item = trim(item);
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

}  // namespace fedpower::util
