// Minimal CSV emission for experiment outputs. Values are quoted only when
// needed (comma, quote or newline present), per RFC 4180.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace fedpower::util {

/// Writes rows of string/double cells to a stream or file.
class CsvWriter {
 public:
  /// Writes to the given file path; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes into a caller-owned stream (used by tests).
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Emits one row; cells are escaped as needed.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: label followed by numeric cells (formatted with %.6g).
  void write_row(const std::string& label, const std::vector<double>& values);

  /// Formats a double the way write_row does ("%.6g").
  static std::string format(double value);

 private:
  static std::string escape(const std::string& cell);

  std::ofstream file_;
  std::ostream* out_ = nullptr;
};

}  // namespace fedpower::util
