#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace fedpower::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::format(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

void AsciiTable::add_row(const std::string& label,
                         const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) cells.push_back(format(v, precision));
  add_row(std::move(cells));
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i >= widths.size()) widths.resize(i + 1, 0);
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::ostringstream os;
  const auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const AsciiTable& t) {
  return os << t.to_string();
}

}  // namespace fedpower::util
