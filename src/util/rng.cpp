#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace fedpower::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  FEDPOWER_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  FEDPOWER_EXPECTS(n > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

int Rng::uniform_int(int lo, int hi) noexcept {
  FEDPOWER_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(hi) - static_cast<std::int64_t>(lo) + 1);
  return lo + static_cast<int>(uniform_index(span));
}

double Rng::normal() noexcept {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  FEDPOWER_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (const double w : weights) {
    FEDPOWER_EXPECTS(w >= 0.0);
    total += w;
  }
  FEDPOWER_EXPECTS(total > 0.0);
  const double target = uniform() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;  // floating-point edge: fall back to last entry
}

Rng Rng::split() noexcept { return Rng{next_u64()}; }

}  // namespace fedpower::util
