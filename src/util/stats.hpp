// Streaming and batch statistics used by the evaluation harness, telemetry
// aggregation and the benchmark tables.
#pragma once

#include <cstddef>
#include <vector>

namespace fedpower::util {

/// Numerically stable streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel-combinable).
  void merge(const RunningStats& other) noexcept;

  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// Mean of the samples; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;

  /// Sample standard deviation; 0 for fewer than two samples.
  [[nodiscard]] double stddev() const noexcept;

  /// Smallest sample seen; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }

  /// Largest sample seen; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sum of all samples.
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector; 0 when empty.
[[nodiscard]] double mean(const std::vector<double>& xs) noexcept;

/// Sample standard deviation of a vector; 0 for fewer than two samples.
[[nodiscard]] double stddev(const std::vector<double>& xs) noexcept;

/// Linear-interpolation percentile, p in [0, 100]. Requires non-empty input.
/// The input is copied and sorted internally.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Simple moving average with the given window (>= 1); output length matches
/// the input, with a growing window at the start.
[[nodiscard]] std::vector<double> moving_average(
    const std::vector<double>& xs, std::size_t window);

/// Relative change (b - a) / |a| expressed in percent; 0 when a == 0.
[[nodiscard]] double percent_change(double a, double b) noexcept;

}  // namespace fedpower::util
