#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace fedpower::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) noexcept {
  RunningStats s;
  for (const double x : xs) s.add(x);
  return s.mean();
}

double stddev(const std::vector<double>& xs) noexcept {
  RunningStats s;
  for (const double x : xs) s.add(x);
  return s.stddev();
}

double percentile(std::vector<double> xs, double p) {
  FEDPOWER_EXPECTS(!xs.empty());
  FEDPOWER_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::vector<double> moving_average(const std::vector<double>& xs,
                                   std::size_t window) {
  FEDPOWER_EXPECTS(window >= 1);
  std::vector<double> out;
  out.reserve(xs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];
    if (i >= window) acc -= xs[i - window];
    const std::size_t n = std::min(i + 1, window);
    out.push_back(acc / static_cast<double>(n));
  }
  return out;
}

double percent_change(double a, double b) noexcept {
  if (a == 0.0) return 0.0;
  return (b - a) / std::abs(a) * 100.0;
}

}  // namespace fedpower::util
