// Profit [6]: the state-of-the-art single-device, table-based RL power
// controller the paper compares against (§IV-B).
//
// State: (f, P, IPC, MPKI), discretized. Reward: IPS while under the power
// constraint, -5 * |P_crit - P| on violation. Exploration: epsilon-greedy
// with exponential decay (floor 0.01); learning rate 0.1.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rl/reward.hpp"
#include "rl/schedule.hpp"
#include "rl/tabular.hpp"
#include "sim/telemetry.hpp"
#include "util/rng.hpp"

namespace fedpower::baselines {

struct ProfitConfig {
  std::size_t action_count = 15;
  double learning_rate = 0.1;      // typical table-based value (paper §IV-B)
  double epsilon_max = 0.9;
  double epsilon_decay = 0.0005;
  double epsilon_min = 0.01;       // paper §IV-B
  double p_crit_w = 0.6;
  double ips_scale = 1e9;          // normalizes IPS into the reward
  /// Bins per state dimension (f, P, IPC, MPKI).
  std::size_t f_bins = 5;
  std::size_t power_bins = 6;
  std::size_t ipc_bins = 5;
  std::size_t mpki_bins = 5;
};

/// Profit's 4-feature state vector from telemetry: (f/f_max, P, IPC, MPKI).
std::vector<double> profit_features(const sim::TelemetrySample& sample,
                                    double f_max_mhz);

/// The discretizer matching ProfitConfig's bin layout.
rl::Discretizer profit_discretizer(const ProfitConfig& config);

class ProfitAgent {
 public:
  ProfitAgent(ProfitConfig config, util::Rng rng);

  /// Epsilon-greedy action for a (continuous) feature vector.
  std::size_t select_action(std::span<const double> features);

  /// Greedy action (evaluation behaviour).
  std::size_t greedy_action(std::span<const double> features) const;

  /// Records an interaction outcome and updates the Q-table.
  void record(std::span<const double> features, std::size_t action,
              double reward);

  double epsilon() const noexcept;
  std::size_t step_count() const noexcept { return step_; }
  const rl::QTable& table() const noexcept { return table_; }
  rl::QTable& table() noexcept { return table_; }
  const rl::Discretizer& discretizer() const noexcept { return discretizer_; }
  const ProfitConfig& config() const noexcept { return config_; }

  /// Reward signal used by this agent.
  const rl::ProfitReward& reward() const noexcept { return reward_; }

 private:
  ProfitConfig config_;
  util::Rng rng_;
  rl::Discretizer discretizer_;
  rl::QTable table_;
  rl::ExponentialDecay epsilon_schedule_;
  rl::ProfitReward reward_;
  std::size_t step_ = 0;
};

}  // namespace fedpower::baselines
