// CollabPolicy: privacy-preserving collaborative power management in the
// style of Tian et al. [11], grafted onto the Profit agent as the paper's
// state-of-the-art comparison point, "Profit+CollabPolicy" (§IV-B).
//
// Each device trains a local value table and additionally holds a copy of a
// global policy represented per state s by the tuple
// (pi*(s), r-bar(s), n(s)): best action, average reward and visit count.
// When choosing an action, the device consults whichever of the two knows
// the current state better (higher average reward); after each round the
// devices upload their per-state summaries — not raw traces — and the
// server merges them by reward-weighted visit counts.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/profit.hpp"

namespace fedpower::baselines {

/// One state's entry of the shared global policy.
struct PolicyEntry {
  std::uint8_t best_action = 0;
  float mean_reward = 0.0F;
  std::uint32_t visits = 0;

  bool operator==(const PolicyEntry&) const = default;
};

/// Serialized size of a global-policy table (for traffic accounting).
std::size_t policy_table_bytes(std::size_t state_count) noexcept;

/// Central server: merges client policy summaries into the global policy.
class CollabPolicyServer {
 public:
  explicit CollabPolicyServer(std::size_t state_count);

  /// Merges one summary per client. For every state, visits accumulate, the
  /// average reward is the visit-weighted mean, and the best action is taken
  /// from the client reporting the highest average reward there.
  void aggregate(const std::vector<std::vector<PolicyEntry>>& locals);

  const std::vector<PolicyEntry>& global() const noexcept { return global_; }
  std::size_t state_count() const noexcept { return global_.size(); }

 private:
  std::vector<PolicyEntry> global_;
};

/// A device-side controller combining a local Profit agent with the shared
/// global policy.
class CollabProfitClient {
 public:
  CollabProfitClient(ProfitConfig config, util::Rng rng);

  /// Chooses an action: global policy's best action when the global policy
  /// knows the state better than local experience, local epsilon-greedy
  /// otherwise.
  std::size_t select_action(std::span<const double> features);

  /// Greedy evaluation action under the same local/global arbitration.
  std::size_t greedy_action(std::span<const double> features) const;

  /// Records an interaction in the local table.
  void record(std::span<const double> features, std::size_t action,
              double reward);

  /// Per-state summary of the local policy for upload to the server.
  std::vector<PolicyEntry> export_policy() const;

  /// Installs the merged global policy received from the server.
  void receive_global(std::vector<PolicyEntry> global);

  const ProfitAgent& local_agent() const noexcept { return local_; }
  ProfitAgent& local_agent() noexcept { return local_; }

  /// True if the most recent select/greedy call consulted the global policy
  /// (exposed for tests).
  bool used_global() const noexcept { return used_global_; }

 private:
  bool prefer_global(std::size_t state) const noexcept;

  ProfitAgent local_;
  std::vector<PolicyEntry> global_;
  mutable bool used_global_ = false;
};

}  // namespace fedpower::baselines
