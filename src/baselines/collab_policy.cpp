#include "baselines/collab_policy.hpp"

#include "util/assert.hpp"

namespace fedpower::baselines {

std::size_t policy_table_bytes(std::size_t state_count) noexcept {
  return state_count * (sizeof(std::uint8_t) + sizeof(float) +
                        sizeof(std::uint32_t));
}

CollabPolicyServer::CollabPolicyServer(std::size_t state_count)
    : global_(state_count) {
  FEDPOWER_EXPECTS(state_count > 0);
}

void CollabPolicyServer::aggregate(
    const std::vector<std::vector<PolicyEntry>>& locals) {
  FEDPOWER_EXPECTS(!locals.empty());
  for (const auto& local : locals)
    FEDPOWER_EXPECTS(local.size() == global_.size());

  for (std::size_t s = 0; s < global_.size(); ++s) {
    std::uint64_t visits = 0;
    double reward_sum = 0.0;
    float best_reward = 0.0F;
    std::uint8_t best_action = 0;
    bool any = false;
    for (const auto& local : locals) {
      const PolicyEntry& entry = local[s];
      if (entry.visits == 0) continue;
      visits += entry.visits;
      reward_sum +=
          static_cast<double>(entry.mean_reward) * entry.visits;
      if (!any || entry.mean_reward > best_reward) {
        best_reward = entry.mean_reward;
        best_action = entry.best_action;
        any = true;
      }
    }
    if (!any) continue;  // no client visited this state; keep previous entry
    PolicyEntry merged;
    merged.visits = static_cast<std::uint32_t>(
        visits > 0xffffffffULL ? 0xffffffffULL : visits);
    merged.mean_reward =
        static_cast<float>(reward_sum / static_cast<double>(visits));
    merged.best_action = best_action;
    global_[s] = merged;
  }
}

CollabProfitClient::CollabProfitClient(ProfitConfig config, util::Rng rng)
    : local_(config, rng) {}

bool CollabProfitClient::prefer_global(std::size_t state) const noexcept {
  if (global_.empty() || global_[state].visits == 0) return false;
  if (local_.table().state_visits(state) == 0) return true;
  // Consult the policy that has seen higher average reward in this state.
  return static_cast<double>(global_[state].mean_reward) >
         local_.table().state_mean_reward(state);
}

std::size_t CollabProfitClient::select_action(
    std::span<const double> features) {
  const std::size_t s = local_.discretizer().index(features);
  if (prefer_global(s)) {
    used_global_ = true;
    return global_[s].best_action;
  }
  used_global_ = false;
  return local_.select_action(features);
}

std::size_t CollabProfitClient::greedy_action(
    std::span<const double> features) const {
  const std::size_t s = local_.discretizer().index(features);
  if (prefer_global(s)) {
    used_global_ = true;
    return global_[s].best_action;
  }
  used_global_ = false;
  return local_.greedy_action(features);
}

void CollabProfitClient::record(std::span<const double> features,
                                std::size_t action, double reward) {
  local_.record(features, action, reward);
}

std::vector<PolicyEntry> CollabProfitClient::export_policy() const {
  const rl::QTable& table = local_.table();
  std::vector<PolicyEntry> summary(table.states());
  for (std::size_t s = 0; s < table.states(); ++s) {
    const std::size_t visits = table.state_visits(s);
    if (visits == 0) continue;
    summary[s].best_action =
        static_cast<std::uint8_t>(table.best_action(s));
    summary[s].mean_reward =
        static_cast<float>(table.state_mean_reward(s));
    summary[s].visits = static_cast<std::uint32_t>(visits);
  }
  return summary;
}

void CollabProfitClient::receive_global(std::vector<PolicyEntry> global) {
  FEDPOWER_EXPECTS(global.size() == local_.table().states());
  global_ = std::move(global);
}

}  // namespace fedpower::baselines
