#include "baselines/profit.hpp"

#include "rl/policy.hpp"

namespace fedpower::baselines {

std::vector<double> profit_features(const sim::TelemetrySample& sample,
                                    double f_max_mhz) {
  return {sample.freq_mhz / f_max_mhz, sample.power_w, sample.ipc,
          sample.mpki};
}

rl::Discretizer profit_discretizer(const ProfitConfig& config) {
  return rl::Discretizer({
      rl::DimensionSpec{0.0, 1.0, config.f_bins},
      rl::DimensionSpec{0.1, 1.3, config.power_bins},
      rl::DimensionSpec{0.0, 1.5, config.ipc_bins},
      rl::DimensionSpec{0.0, 50.0, config.mpki_bins},
  });
}

ProfitAgent::ProfitAgent(ProfitConfig config, util::Rng rng)
    : config_(config),
      rng_(rng),
      discretizer_(profit_discretizer(config)),
      table_(discretizer_.state_count(), config.action_count),
      epsilon_schedule_(config.epsilon_max, config.epsilon_decay,
                        config.epsilon_min),
      reward_(config.p_crit_w, config.ips_scale) {
  FEDPOWER_EXPECTS(config.action_count > 0);
  FEDPOWER_EXPECTS(config.learning_rate > 0.0 && config.learning_rate <= 1.0);
}

double ProfitAgent::epsilon() const noexcept {
  return epsilon_schedule_.value(step_);
}

std::size_t ProfitAgent::select_action(std::span<const double> features) {
  const std::size_t s = discretizer_.index(features);
  return rl::epsilon_greedy(table_.row(s), epsilon(), rng_);
}

std::size_t ProfitAgent::greedy_action(
    std::span<const double> features) const {
  return table_.best_action(discretizer_.index(features));
}

void ProfitAgent::record(std::span<const double> features, std::size_t action,
                         double reward) {
  FEDPOWER_EXPECTS(action < config_.action_count);
  const std::size_t s = discretizer_.index(features);
  table_.update(s, action, reward, config_.learning_rate);
  ++step_;
}

}  // namespace fedpower::baselines
