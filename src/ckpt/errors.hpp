// Error taxonomy of the persistence subsystem (DESIGN.md §9).
//
// Recovery code needs to distinguish three failure classes because each one
// has a different correct reaction:
//
//   * SnapshotNotFoundError   — nothing to resume from: start fresh.
//   * CorruptSnapshotError    — the bytes are damaged (truncation, bit flip,
//                               torn write): fall back to an older rotation
//                               entry; never silently restore garbage.
//   * VersionMismatchError    — the bytes are intact but written by an
//                               incompatible format revision: refuse loudly
//                               (falling back to an older entry of the same
//                               version would be equally incompatible).
//   * StateMismatchError      — the snapshot is valid but does not fit the
//                               object it is being restored into (different
//                               fleet size, model shape, buffer capacity):
//                               a configuration error, not data damage.
//
// All derive from CkptError so callers that only care about "resume failed"
// can catch one type.
#pragma once

#include <stdexcept>
#include <string>

namespace fedpower::ckpt {

/// Base class of every persistence-layer failure.
class CkptError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// No snapshot exists at the given path / in the given rotation directory.
class SnapshotNotFoundError final : public CkptError {
 public:
  using CkptError::CkptError;
};

/// The snapshot bytes fail validation: short header, bad magic, length
/// mismatch, or CRC32 failure. The data cannot be trusted.
class CorruptSnapshotError final : public CkptError {
 public:
  using CkptError::CkptError;
};

/// The snapshot container is intact but uses a format revision this build
/// does not understand.
class VersionMismatchError final : public CkptError {
 public:
  using CkptError::CkptError;
};

/// The snapshot decoded cleanly but describes a different object shape than
/// the one being restored (wrong device count, parameter count, capacity).
class StateMismatchError final : public CkptError {
 public:
  using CkptError::CkptError;
};

}  // namespace fedpower::ckpt
