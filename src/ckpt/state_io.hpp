// Serialization helpers for util types used by many component snapshots.
#pragma once

#include "ckpt/binary_io.hpp"
#include "util/rng.hpp"

namespace fedpower::ckpt {

/// Writes the four 64-bit words of the xoshiro256++ state.
inline void save_rng(Writer& out, const util::Rng& rng) {
  for (const std::uint64_t word : rng.state()) out.u64(word);
}

/// Restores an Rng stream to exactly where it was serialized. An all-zero
/// state (possible only in a forged snapshot — the generator can never
/// reach it) is rejected as corruption rather than tripping the assert in
/// Rng::set_state.
inline void restore_rng(Reader& in, util::Rng& rng) {
  std::array<std::uint64_t, 4> state{};
  for (std::uint64_t& word : state) word = in.u64();
  if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0)
    throw CorruptSnapshotError("RNG snapshot holds the all-zero state");
  rng.set_state(state);
}

}  // namespace fedpower::ckpt
