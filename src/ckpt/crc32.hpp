// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum that
// seals every snapshot. Chosen over a cryptographic hash because snapshots
// guard against accidental damage (torn writes, bit rot), not adversaries,
// and a 4-byte trailer keeps small component snapshots small.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace fedpower::ckpt {

/// CRC of one buffer (initial value 0).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// Streaming form: feed the previous call's return value to checksum data
/// arriving in chunks. Start with crc = 0.
[[nodiscard]] std::uint32_t crc32_update(
    std::uint32_t crc, std::span<const std::uint8_t> data) noexcept;

}  // namespace fedpower::ckpt
