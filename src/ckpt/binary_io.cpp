#include "ckpt/binary_io.hpp"

#include <bit>
#include <limits>

#include "util/assert.hpp"

namespace fedpower::ckpt {

void Writer::u8(std::uint8_t v) { buffer_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v & 0xffu));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    buffer_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    buffer_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }

void Writer::str(const std::string& s) {
  FEDPOWER_EXPECTS(s.size() <= std::numeric_limits<std::uint32_t>::max());
  u32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  FEDPOWER_EXPECTS(data.size() <= std::numeric_limits<std::uint32_t>::max());
  u32(static_cast<std::uint32_t>(data.size()));
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Writer::raw(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Writer::vec_f64(std::span<const double> v) {
  u64(v.size());
  for (const double x : v) f64(x);
}

void Writer::vec_f32(std::span<const float> v) {
  u64(v.size());
  for (const float x : v) f32(x);
}

void Writer::vec_u8(std::span<const std::uint8_t> v) {
  u64(v.size());
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void Writer::vec_u64(std::span<const std::uint64_t> v) {
  u64(v.size());
  for (const std::uint64_t x : v) u64(x);
}

void Reader::require(std::size_t n) const {
  if (remaining() < n)
    throw CorruptSnapshotError(
        "snapshot payload truncated: need " + std::to_string(n) +
        " more byte(s) at offset " + std::to_string(pos_) + ", have " +
        std::to_string(remaining()));
}

std::uint8_t Reader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  require(2);
  const auto v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<unsigned>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

float Reader::f32() { return std::bit_cast<float>(u32()); }

std::string Reader::str() {
  const std::uint32_t n = u32();
  require(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> Reader::bytes() { return raw(u32()); }

std::vector<std::uint8_t> Reader::raw(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

namespace {

/// Rejects element counts a truncated buffer cannot possibly hold, before
/// any allocation happens; written as a division so a forged count near
/// 2^64 cannot overflow the byte computation.
void check_count(std::uint64_t n, std::size_t elem_size,
                 std::size_t remaining) {
  if (n > remaining / elem_size)
    throw CorruptSnapshotError("snapshot payload truncated: vector claims " +
                               std::to_string(n) + " element(s) but only " +
                               std::to_string(remaining) + " byte(s) remain");
}

}  // namespace

std::vector<double> Reader::vec_f64() {
  const std::uint64_t n = u64();
  check_count(n, 8, remaining());
  std::vector<double> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(f64());
  return out;
}

std::vector<float> Reader::vec_f32() {
  const std::uint64_t n = u64();
  check_count(n, 4, remaining());
  std::vector<float> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(f32());
  return out;
}

std::vector<std::uint8_t> Reader::vec_u8() {
  const std::uint64_t n = u64();
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::vector<std::uint64_t> Reader::vec_u64() {
  const std::uint64_t n = u64();
  check_count(n, 8, remaining());
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(u64());
  return out;
}

void write_tag(Writer& out, const Tag& tag) {
  for (const char c : tag) out.u8(static_cast<std::uint8_t>(c));
}

void expect_tag(Reader& in, const Tag& tag, const char* component) {
  Tag got{};
  for (char& c : got) c = static_cast<char>(in.u8());
  if (got != tag)
    throw CorruptSnapshotError(
        std::string("snapshot section mismatch: expected '") +
        std::string(tag.data(), tag.size()) + "' (" + component + "), found '" +
        std::string(got.data(), got.size()) + "'");
}

}  // namespace fedpower::ckpt
