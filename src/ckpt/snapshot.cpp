#include "ckpt/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "ckpt/binary_io.hpp"
#include "ckpt/crc32.hpp"

namespace fedpower::ckpt {

namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'P', 'C', 'K'};

}  // namespace

std::vector<std::uint8_t> encode_snapshot(
    std::span<const std::uint8_t> payload) {
  Writer out;
  for (const std::uint8_t b : kMagic) out.u8(b);
  out.u16(kSnapshotVersion);
  out.u16(0);  // reserved
  out.u64(payload.size());
  out.raw(payload);
  const std::uint32_t crc =
      crc32(std::span(out.data()).subspan(sizeof kMagic));
  out.u32(crc);
  return out.take();
}

std::vector<std::uint8_t> decode_snapshot(
    std::span<const std::uint8_t> container) {
  if (container.size() < kSnapshotHeaderBytes + kSnapshotTrailerBytes)
    throw CorruptSnapshotError("snapshot truncated: " +
                               std::to_string(container.size()) +
                               " byte(s) is smaller than header + trailer");
  if (std::memcmp(container.data(), kMagic, sizeof kMagic) != 0)
    throw CorruptSnapshotError("snapshot has bad magic (not an FPCK file)");

  // Everything after the magic and before the trailer is under the CRC.
  const std::size_t body_len =
      container.size() - sizeof kMagic - kSnapshotTrailerBytes;
  const std::uint32_t computed =
      crc32(container.subspan(sizeof kMagic, body_len));
  Reader trailer(container.subspan(container.size() - kSnapshotTrailerBytes));
  const std::uint32_t stored = trailer.u32();
  if (computed != stored)
    throw CorruptSnapshotError("snapshot CRC mismatch: stored " +
                               std::to_string(stored) + ", computed " +
                               std::to_string(computed));

  Reader in(container.subspan(sizeof kMagic, body_len));
  const std::uint16_t version = in.u16();
  if (version != kSnapshotVersion)
    throw VersionMismatchError("snapshot format version " +
                               std::to_string(version) +
                               " is not supported (this build reads version " +
                               std::to_string(kSnapshotVersion) + ")");
  (void)in.u16();  // reserved
  const std::uint64_t payload_len = in.u64();
  if (payload_len != in.remaining())
    throw CorruptSnapshotError(
        "snapshot length mismatch: header claims " +
        std::to_string(payload_len) + " payload byte(s), container holds " +
        std::to_string(in.remaining()));
  return in.raw(payload_len);
}

void write_snapshot_file(const std::string& path,
                         std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> container = encode_snapshot(payload);
  const std::string tmp = path + ".tmp";
  // C stdio instead of ofstream: fsync needs the file descriptor, and a
  // snapshot that only reached the page cache is not durable.
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    throw CkptError("snapshot: cannot open " + tmp + ": " +
                    std::strerror(errno));
  const bool wrote =
      std::fwrite(container.data(), 1, container.size(), f) ==
      container.size();
  bool flushed = wrote && std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  if (flushed && ::fsync(::fileno(f)) != 0) flushed = false;
#endif
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !flushed || !closed) {
    std::remove(tmp.c_str());  // best effort
    throw CkptError("snapshot: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CkptError("snapshot: rename " + tmp + " -> " + path + " failed: " +
                    std::strerror(errno));
  }
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw SnapshotNotFoundError("cannot open " + path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::vector<std::uint8_t> read_snapshot_file(const std::string& path) {
  return decode_snapshot(read_file_bytes(path));
}

}  // namespace fedpower::ckpt
