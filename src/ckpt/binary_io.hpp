// Typed little-endian binary encoding for snapshot payloads.
//
// Writer appends fixed-width fields to a byte buffer; Reader consumes them
// with bounds checking and throws CorruptSnapshotError instead of reading
// past the end, so a truncated or bit-flipped payload that somehow slips
// past the container CRC still cannot make restore_state() read garbage.
// Every multi-byte value is little-endian regardless of host order, so a
// snapshot written on one machine restores on any other.
//
// Components frame their state with a 4-byte tag (write_tag/expect_tag):
// the tag turns "restore read the wrong bytes" into a named error ("expected
// ADAM section") instead of silently mis-assigning fields.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ckpt/errors.hpp"

namespace fedpower::ckpt {

class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  ///< IEEE-754 bit pattern, little-endian
  void f32(float v);

  /// Length-prefixed (u32) byte/character sequences.
  void str(const std::string& s);
  void bytes(std::span<const std::uint8_t> data);

  /// Appends bytes verbatim, no length prefix (container framing only).
  void raw(std::span<const std::uint8_t> data);

  /// Length-prefixed (u64) homogeneous vectors.
  void vec_f64(std::span<const double> v);
  void vec_f32(std::span<const float> v);
  void vec_u8(std::span<const std::uint8_t> v);
  void vec_u64(std::span<const std::uint64_t> v);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buffer_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class Reader {
 public:
  /// The reader does not own the bytes; they must outlive it.
  explicit Reader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] float f32();

  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::uint8_t> bytes();

  /// Consumes exactly n bytes verbatim (container framing only).
  [[nodiscard]] std::vector<std::uint8_t> raw(std::size_t n);

  [[nodiscard]] std::vector<double> vec_f64();
  [[nodiscard]] std::vector<float> vec_f32();
  [[nodiscard]] std::vector<std::uint8_t> vec_u8();
  [[nodiscard]] std::vector<std::uint64_t> vec_u64();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  /// Throws CorruptSnapshotError when fewer than n bytes remain.
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// 4-character section tags framing each component's state.
using Tag = std::array<char, 4>;

void write_tag(Writer& out, const Tag& tag);

/// Consumes 4 bytes and throws CorruptSnapshotError naming `component` when
/// they differ from the expected tag.
void expect_tag(Reader& in, const Tag& tag, const char* component);

}  // namespace fedpower::ckpt
