#include "ckpt/rotation.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace fedpower::ckpt {

namespace {

constexpr const char* kPrefix = "snapshot-";
constexpr const char* kSuffix = ".fpck";

/// Parses "snapshot-NNNNNN.fpck" -> NNNNNN; returns false for anything
/// else so stray files in the directory are ignored, not misread.
bool parse_sequence(const std::string& name, std::uint64_t& sequence) {
  const std::string prefix = kPrefix;
  const std::string suffix = kSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return false;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  sequence = value;
  return true;
}

}  // namespace

SnapshotRotation::SnapshotRotation(std::string dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(keep) {
  FEDPOWER_EXPECTS(keep_ >= 1);
  FEDPOWER_EXPECTS(!dir_.empty());
}

std::string SnapshotRotation::path_for(std::uint64_t sequence) const {
  char name[32];
  std::snprintf(name, sizeof name, "%s%06llu%s", kPrefix,
                static_cast<unsigned long long>(sequence), kSuffix);
  return dir_ + "/" + name;
}

std::vector<std::uint64_t> SnapshotRotation::sequences() const {
  std::vector<std::uint64_t> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::uint64_t sequence = 0;
    if (parse_sequence(entry.path().filename().string(), sequence))
      out.push_back(sequence);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string SnapshotRotation::save(
    std::span<const std::uint8_t> payload) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw CkptError("snapshot rotation: cannot create directory " + dir_ +
                    ": " + ec.message());

  const std::vector<std::uint64_t> existing = sequences();
  const std::uint64_t next = existing.empty() ? 1 : existing.back() + 1;
  const std::string path = path_for(next);
  write_snapshot_file(path, payload);

  // Prune oldest beyond the keep depth. The newly written snapshot counts.
  if (existing.size() + 1 > keep_) {
    const std::size_t excess = existing.size() + 1 - keep_;
    for (std::size_t i = 0; i < excess; ++i)
      std::filesystem::remove(path_for(existing[i]), ec);  // best effort
  }
  return path;
}

LoadedSnapshot SnapshotRotation::load_latest() const {
  const std::vector<std::uint64_t> existing = sequences();
  if (existing.empty())
    throw SnapshotNotFoundError("no snapshots in " + dir_);

  std::string failures;
  for (auto it = existing.rbegin(); it != existing.rend(); ++it) {
    const std::string path = path_for(*it);
    try {
      return LoadedSnapshot{read_snapshot_file(path), path, *it};
    } catch (const CkptError& e) {
      // Damaged or unreadable entry: remember why and fall back to the
      // next-older snapshot.
      failures += "\n  " + path + ": " + e.what();
    }
  }
  throw CorruptSnapshotError("every snapshot in " + dir_ +
                             " failed to load:" + failures);
}

}  // namespace fedpower::ckpt
