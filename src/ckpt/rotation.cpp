#include "ckpt/rotation.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace fedpower::ckpt {

namespace {

constexpr const char* kPrefix = "snapshot-";
constexpr const char* kSuffix = ".fpck";

/// Parses "snapshot-<digits>.fpck" -> sequence; returns false for anything
/// else so stray files in the directory are ignored, not misread. The digit
/// run may be any width: historic rotations used a fixed %06 format, newer
/// ones pad to 12 digits, and long soaks can outgrow either — numeric
/// ordering (not name ordering) is what sequences()/load_latest() sort by.
bool parse_sequence(const std::string& name, std::uint64_t& sequence) {
  const std::string prefix = kPrefix;
  const std::string suffix = kSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return false;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  // A u64 holds at most 20 decimal digits; longer runs would silently wrap
  // in the accumulation below, so they are rejected as not-a-snapshot.
  if (digits.size() > 20) return false;
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  sequence = value;
  return true;
}

}  // namespace

SnapshotRotation::SnapshotRotation(std::string dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(keep) {
  FEDPOWER_EXPECTS(keep_ >= 1);
  FEDPOWER_EXPECTS(!dir_.empty());
}

std::string SnapshotRotation::path_for(std::uint64_t sequence) const {
  // 12-digit zero padding: the historic %06 width overflows at sequence
  // 10^6 (plausible in long soaks at every-round cadence), after which
  // lexicographic name order and numeric order diverge. %012 keeps names
  // aligned to 10^12 snapshots; beyond that the name simply grows wider —
  // parse_sequence reads any digit run, so ordering stays numeric either
  // way. Old narrow names remain loadable: entries() matches on the
  // parsed sequence, never on the formatted width.
  char name[40];
  std::snprintf(name, sizeof name, "%s%012llu%s", kPrefix,
                static_cast<unsigned long long>(sequence), kSuffix);
  return dir_ + "/" + name;
}

std::vector<SnapshotRotation::Entry> SnapshotRotation::entries() const {
  std::vector<Entry> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::uint64_t sequence = 0;
    const std::string name = entry.path().filename().string();
    if (parse_sequence(name, sequence)) out.push_back({sequence, name});
  }
  // Sort by (sequence, name): a sequence present under both the narrow and
  // the wide spelling (possible only if two rotation epochs wrote the same
  // number) still yields one deterministic order.
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.sequence != b.sequence ? a.sequence < b.sequence
                                    : a.name < b.name;
  });
  return out;
}

std::vector<std::uint64_t> SnapshotRotation::sequences() const {
  std::vector<std::uint64_t> out;
  for (const Entry& entry : entries()) out.push_back(entry.sequence);
  return out;
}

std::string SnapshotRotation::save(
    std::span<const std::uint8_t> payload) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw CkptError("snapshot rotation: cannot create directory " + dir_ +
                    ": " + ec.message());

  const std::vector<Entry> existing = entries();
  const std::uint64_t next =
      existing.empty() ? 1 : existing.back().sequence + 1;
  const std::string path = path_for(next);
  write_snapshot_file(path, payload);

  // Prune oldest beyond the keep depth, by the names actually on disk so a
  // rotation carried over from the narrow-format era is trimmed too. The
  // newly written snapshot counts.
  if (existing.size() + 1 > keep_) {
    const std::size_t excess = existing.size() + 1 - keep_;
    for (std::size_t i = 0; i < excess; ++i)
      std::filesystem::remove(dir_ + "/" + existing[i].name,
                              ec);  // best effort
  }
  return path;
}

LoadedSnapshot SnapshotRotation::load_latest() const {
  const std::vector<Entry> existing = entries();
  if (existing.empty())
    throw SnapshotNotFoundError("no snapshots in " + dir_);

  std::string failures;
  for (auto it = existing.rbegin(); it != existing.rend(); ++it) {
    const std::string path = dir_ + "/" + it->name;
    try {
      return LoadedSnapshot{read_snapshot_file(path), path, it->sequence};
    } catch (const CkptError& e) {
      // Damaged or unreadable entry: remember why and fall back to the
      // next-older snapshot.
      failures += "\n  " + path + ": " + e.what();
    }
  }
  throw CorruptSnapshotError("every snapshot in " + dir_ +
                             " failed to load:" + failures);
}

}  // namespace fedpower::ckpt
