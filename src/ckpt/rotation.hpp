// N-deep snapshot rotation (DESIGN.md §9).
//
// A rotation directory holds sequence-numbered containers,
// "snapshot-000042.fpck". save() always writes a NEW file (atomic, via
// write_snapshot_file) and then prunes the oldest entries beyond `keep`;
// the previous snapshot is never modified in place, so a crash or a
// corrupted write can cost at most the newest entry. load_latest() walks
// the entries newest-first and returns the first one that decodes cleanly,
// which is exactly the fallback the single-byte-corruption acceptance test
// exercises: damage snapshot N and recovery silently lands on N-1.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ckpt/errors.hpp"

namespace fedpower::ckpt {

/// Result of load_latest: the decoded payload plus where it came from, so
/// callers can report which snapshot a run resumed against.
struct LoadedSnapshot {
  std::vector<std::uint8_t> payload;
  std::string path;
  std::uint64_t sequence = 0;
};

class SnapshotRotation {
 public:
  /// `dir` is created on first save if missing. `keep` >= 1.
  SnapshotRotation(std::string dir, std::size_t keep);

  /// Writes the payload as the next sequence-numbered snapshot and prunes
  /// entries beyond the keep depth. Returns the path written.
  std::string save(std::span<const std::uint8_t> payload) const;

  /// Newest-first search for a decodable snapshot. Entries that fail to
  /// decode (corruption, version mismatch) are skipped with the next-older
  /// entry tried instead. Throws SnapshotNotFoundError when the directory
  /// holds no snapshots at all, CorruptSnapshotError when every entry is
  /// damaged.
  [[nodiscard]] LoadedSnapshot load_latest() const;

  /// Sequence numbers currently present, ascending. Empty when the
  /// directory is missing or holds no snapshots.
  [[nodiscard]] std::vector<std::uint64_t> sequences() const;

  /// Path a given sequence number maps to when newly written
  /// ("<dir>/snapshot-NNNNNNNNNNNN.fpck", 12-digit zero padding). Load and
  /// prune go by the filenames actually present, so snapshots written by
  /// the historic 6-digit format keep working; this is only where the NEXT
  /// snapshot lands.
  [[nodiscard]] std::string path_for(std::uint64_t sequence) const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::size_t keep() const noexcept { return keep_; }

 private:
  /// One snapshot on disk: its parsed sequence number and the filename it
  /// was found under (the format width may differ between rotation epochs).
  struct Entry {
    std::uint64_t sequence = 0;
    std::string name;
  };

  /// Snapshots currently on disk, ascending by (sequence, name).
  [[nodiscard]] std::vector<Entry> entries() const;

  std::string dir_;
  std::size_t keep_;
};

}  // namespace fedpower::ckpt
