// The durable snapshot container (DESIGN.md §9).
//
// On-disk layout, little-endian:
//
//   bytes 0..3    magic "FPCK"
//   bytes 4..5    container format version (kSnapshotVersion)
//   bytes 6..7    reserved (zero)
//   bytes 8..15   payload length, uint64
//   bytes 16..    payload (component sections, see binary_io.hpp)
//   last 4        CRC32 over bytes 4 .. 15+payload_length
//
// The CRC covers everything after the magic, so flipping any single byte of
// version, length or payload makes decode_snapshot throw
// CorruptSnapshotError; a wrong version with an intact CRC throws
// VersionMismatchError (the bytes are fine, the format is not ours).
//
// write_snapshot_file is atomic: the bytes land in "<path>.tmp", are
// flushed and fsync'd, and only then renamed over the final path — a crash
// at any instant leaves either the old snapshot or the new one, never a
// torn file. This is the repo's only sanctioned durable-write path; the
// fedpower-lint L6-fs-write rule keeps ad-hoc file writing out of src/.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ckpt/errors.hpp"

namespace fedpower::ckpt {

inline constexpr std::uint16_t kSnapshotVersion = 1;
inline constexpr std::size_t kSnapshotHeaderBytes = 16;
inline constexpr std::size_t kSnapshotTrailerBytes = 4;

/// Wraps a payload in the checksummed container.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    std::span<const std::uint8_t> payload);

/// Validates and unwraps a container. Throws CorruptSnapshotError on any
/// damage (truncation, bad magic, length mismatch, CRC failure) and
/// VersionMismatchError on an unsupported format revision.
[[nodiscard]] std::vector<std::uint8_t> decode_snapshot(
    std::span<const std::uint8_t> container);

/// Atomically persists a payload: write "<path>.tmp", flush + fsync,
/// rename onto path. Throws CkptError on I/O failure (the temp file is
/// removed best-effort).
void write_snapshot_file(const std::string& path,
                         std::span<const std::uint8_t> payload);

/// Reads and unwraps a snapshot file. Throws SnapshotNotFoundError when the
/// file does not exist or cannot be opened; decode errors as above.
[[nodiscard]] std::vector<std::uint8_t> read_snapshot_file(
    const std::string& path);

/// Reads a whole file into memory. Throws SnapshotNotFoundError when it
/// cannot be opened. Shared with nn::load_parameters so every loader
/// validates files the same way.
[[nodiscard]] std::vector<std::uint8_t> read_file_bytes(
    const std::string& path);

}  // namespace fedpower::ckpt
