#include "ckpt/crc32.hpp"

#include <array>

namespace fedpower::ckpt {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc,
                           std::span<const std::uint8_t> data) noexcept {
  std::uint32_t c = crc ^ 0xffffffffu;
  for (const std::uint8_t byte : data)
    c = kTable[(c ^ byte) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  return crc32_update(0, data);
}

}  // namespace fedpower::ckpt
