#include "core/scenario.hpp"

#include "sim/splash2.hpp"
#include "util/assert.hpp"

namespace fedpower::core {

std::vector<Scenario> table2_scenarios() {
  return {
      Scenario{"1", {{"fft", "lu"}, {"raytrace", "volrend"}}},
      Scenario{"2", {{"water-ns", "water-sp"}, {"ocean", "radix"}}},
      Scenario{"3", {{"fmm", "radiosity"}, {"barnes", "cholesky"}}},
  };
}

Scenario six_app_split() {
  return Scenario{
      "six-apps",
      {{"fft", "lu", "raytrace", "volrend", "water-ns", "water-sp"},
       {"ocean", "radix", "fmm", "radiosity", "barnes", "cholesky"}}};
}

std::vector<std::vector<sim::AppProfile>> resolve(const Scenario& scenario) {
  std::vector<std::vector<sim::AppProfile>> result;
  result.reserve(scenario.device_apps.size());
  for (const auto& names : scenario.device_apps) {
    std::vector<sim::AppProfile> apps;
    apps.reserve(names.size());
    for (const auto& name : names) {
      auto app = sim::splash2_app(name);
      FEDPOWER_ASSERT(app.has_value());
      apps.push_back(std::move(*app));
    }
    result.push_back(std::move(apps));
  }
  return result;
}

}  // namespace fedpower::core
