#include "core/experiment.hpp"

#include "fed/federation.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace fedpower::core {

namespace {

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                    (b * 0xbf58476d1ce4e5b9ULL);
  return util::splitmix64(s);
}

/// One simulated device: processor + workload + neural power controller.
struct NeuralDevice {
  std::unique_ptr<sim::Processor> processor;
  std::unique_ptr<sim::Workload> workload;
  std::unique_ptr<PowerController> controller;
};

std::vector<NeuralDevice> make_neural_devices(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps) {
  FEDPOWER_EXPECTS(!device_apps.empty());
  util::Rng root(config.seed);
  std::vector<NeuralDevice> devices;
  devices.reserve(device_apps.size());
  for (const auto& apps : device_apps) {
    NeuralDevice device;
    device.processor =
        std::make_unique<sim::Processor>(config.processor, root.split());
    device.workload = std::make_unique<sim::RandomWorkload>(apps);
    device.processor->set_workload(device.workload.get());
    device.controller = std::make_unique<PowerController>(
        config.controller, device.processor.get(), root.split());
    devices.push_back(std::move(device));
  }
  return devices;
}

Evaluator make_evaluator(const ExperimentConfig& config) {
  EvalConfig eval = config.eval;
  eval.processor = config.processor;
  // Evaluation measures the policy, not silicon luck: use nominal variation.
  eval.processor.power.variation = 1.0;
  eval.dvfs_interval_s = config.controller.dvfs_interval_s;
  return Evaluator(config.controller, eval);
}

void record_eval(RoundCurve& curve, const EvalResult& result) {
  curve.reward.push_back(result.mean_reward);
  curve.mean_freq_mhz.push_back(result.mean_freq_mhz);
  curve.stddev_freq_mhz.push_back(result.stddev_freq_mhz);
  curve.mean_power_w.push_back(result.mean_power_w);
  curve.violation_rate.push_back(result.violation_rate);
}

}  // namespace

FederatedRunResult run_federated(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    const std::vector<sim::AppProfile>& eval_apps, bool eval_each_round) {
  FEDPOWER_EXPECTS(!eval_apps.empty() || !eval_each_round);
  std::vector<NeuralDevice> devices =
      make_neural_devices(config, device_apps);

  fed::InProcessTransport transport;
  std::vector<fed::FederatedClient*> clients;
  clients.reserve(devices.size());
  for (auto& device : devices) clients.push_back(device.controller.get());
  fed::FederatedAveraging server(clients, &transport);
  server.initialize(devices.front().controller->local_parameters());

  const Evaluator evaluator = make_evaluator(config);
  FederatedRunResult result;
  result.devices.resize(devices.size());

  for (std::size_t round = 0; round < config.rounds; ++round) {
    server.run_round();
    if (!eval_each_round) continue;
    const sim::AppProfile& app = eval_apps[round % eval_apps.size()];
    result.eval_app_per_round.push_back(app.name);
    const PolicyFn policy = evaluator.neural_policy(server.global_model());
    for (std::size_t d = 0; d < devices.size(); ++d) {
      const EvalResult eval =
          evaluator.run_episode(policy, app, mix_seed(config.seed, round, d));
      record_eval(result.devices[d], eval);
    }
  }

  result.global_params = server.global_model();
  result.traffic = transport.stats();
  return result;
}

LocalRunResult run_local_only(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    const std::vector<sim::AppProfile>& eval_apps, bool eval_each_round) {
  FEDPOWER_EXPECTS(!eval_apps.empty() || !eval_each_round);
  std::vector<NeuralDevice> devices =
      make_neural_devices(config, device_apps);

  const Evaluator evaluator = make_evaluator(config);
  LocalRunResult result;
  result.devices.resize(devices.size());

  for (std::size_t round = 0; round < config.rounds; ++round) {
    for (auto& device : devices) device.controller->run_local_round();
    if (!eval_each_round) continue;
    const sim::AppProfile& app = eval_apps[round % eval_apps.size()];
    result.eval_app_per_round.push_back(app.name);
    for (std::size_t d = 0; d < devices.size(); ++d) {
      const PolicyFn policy = evaluator.neural_policy(
          devices[d].controller->local_parameters());
      const EvalResult eval =
          evaluator.run_episode(policy, app, mix_seed(config.seed, round, d));
      record_eval(result.devices[d], eval);
    }
  }

  for (auto& device : devices)
    result.final_params.push_back(device.controller->local_parameters());
  return result;
}

namespace {

/// Device running the Profit+CollabPolicy baseline.
struct TabularDevice {
  std::unique_ptr<sim::Processor> processor;
  std::unique_ptr<sim::Workload> workload;
  std::shared_ptr<baselines::CollabProfitClient> client;
  sim::TelemetrySample last_sample{};
  bool have_state = false;
  double f_max_mhz = 0.0;
  double dvfs_interval_s = 0.5;

  void step() {
    if (!have_state) {
      last_sample = processor->run_interval(dvfs_interval_s);
      have_state = true;
    }
    const std::vector<double> features =
        baselines::profit_features(last_sample, f_max_mhz);
    const std::size_t action = client->select_action(features);
    processor->set_level(action);
    const sim::TelemetrySample sample =
        processor->run_interval(dvfs_interval_s);
    const double reward = client->local_agent().reward()(sample);
    client->record(features, action, reward);
    last_sample = sample;
  }
};

}  // namespace

PolicyFn CollabRunResult::policy(std::size_t device, double f_max_mhz) const {
  FEDPOWER_EXPECTS(device < clients.size());
  auto client = clients[device];
  return [client, f_max_mhz](const sim::TelemetrySample& sample) {
    return client->greedy_action(
        baselines::profit_features(sample, f_max_mhz));
  };
}

CollabRunResult run_collab_profit(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps) {
  FEDPOWER_EXPECTS(!device_apps.empty());
  util::Rng root(config.seed);

  baselines::ProfitConfig profit_config;
  profit_config.action_count = config.processor.vf_table.size();
  profit_config.p_crit_w = config.controller.p_crit_w;

  std::vector<TabularDevice> devices;
  devices.reserve(device_apps.size());
  for (const auto& apps : device_apps) {
    TabularDevice device;
    device.processor =
        std::make_unique<sim::Processor>(config.processor, root.split());
    device.workload = std::make_unique<sim::RandomWorkload>(apps);
    device.processor->set_workload(device.workload.get());
    device.client = std::make_shared<baselines::CollabProfitClient>(
        profit_config, root.split());
    device.f_max_mhz = config.processor.vf_table.f_max_mhz();
    device.dvfs_interval_s = config.controller.dvfs_interval_s;
    devices.push_back(std::move(device));
  }

  baselines::CollabPolicyServer server(
      devices.front().client->local_agent().discretizer().state_count());

  const std::size_t steps = config.controller.steps_per_round;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    std::vector<std::vector<baselines::PolicyEntry>> summaries;
    summaries.reserve(devices.size());
    for (auto& device : devices) {
      for (std::size_t t = 0; t < steps; ++t) device.step();
      summaries.push_back(device.client->export_policy());
    }
    server.aggregate(summaries);
    for (auto& device : devices)
      device.client->receive_global(server.global());
  }

  CollabRunResult result;
  for (auto& device : devices) result.clients.push_back(device.client);
  return result;
}

std::vector<AppMetrics> evaluate_apps(const Evaluator& evaluator,
                                      const PolicyFn& policy,
                                      const std::vector<sim::AppProfile>& apps,
                                      std::uint64_t seed) {
  std::vector<AppMetrics> metrics;
  metrics.reserve(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const EvalResult result =
        evaluator.run_to_completion(policy, apps[i], mix_seed(seed, i, 0));
    AppMetrics m;
    m.app = result.app;
    m.exec_time_s = result.exec_time_s;
    m.ips = result.mean_ips;
    m.power_w = result.mean_power_w;
    metrics.push_back(std::move(m));
  }
  return metrics;
}

}  // namespace fedpower::core
