#include "core/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <optional>
#include <stdexcept>

#include "chaos/churn_transport.hpp"
#include "ckpt/rotation.hpp"
#include "ckpt/snapshot.hpp"
#include "fed/federation.hpp"
#include "runtime/fleet_runtime.hpp"
#include "serve/serve_federation.hpp"
#include "sim/workload.hpp"
#include "util/jsonl.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedpower::core {

std::vector<std::size_t> FaultPlanConfig::compromised_devices(
    std::size_t fleet_size) const {
  std::vector<std::size_t> out;
  if (!compromises_devices() || fleet_size == 0) return out;
  const auto count = std::min(
      fleet_size,
      static_cast<std::size_t>(
          std::ceil(fraction * static_cast<double>(fleet_size))));
  for (std::size_t d = fleet_size - count; d < fleet_size; ++d)
    out.push_back(d);
  return out;
}

namespace {

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                    (b * 0xbf58476d1ce4e5b9ULL);
  return util::splitmix64(s);
}

Evaluator make_evaluator(const ExperimentConfig& config) {
  EvalConfig eval = config.eval;
  eval.processor = config.processor;
  // Evaluation measures the policy, not silicon luck: use nominal variation.
  eval.processor.power.variation = 1.0;
  eval.dvfs_interval_s = config.controller.dvfs_interval_s;
  return Evaluator(config.controller, eval);
}

void record_eval(RoundCurve& curve, const EvalResult& result) {
  curve.reward.push_back(result.mean_reward);
  curve.mean_freq_mhz.push_back(result.mean_freq_mhz);
  curve.stddev_freq_mhz.push_back(result.stddev_freq_mhz);
  curve.mean_power_w.push_back(result.mean_power_w);
  curve.violation_rate.push_back(result.violation_rate);
}

/// Merges one round's per-device results into the per-device curves and the
/// fleet curve. The per-device EvalResults are produced in parallel (each
/// episode owns its processor and stats); this merge is the serial step
/// that combines them, RunningStats being the parallel-combinable
/// accumulator.
void record_round(std::vector<RoundCurve>& devices, RoundCurve& fleet,
                  const std::vector<EvalResult>& evals) {
  util::RunningStats reward;
  util::RunningStats freq;
  util::RunningStats freq_stddev;
  util::RunningStats power;
  util::RunningStats violations;
  for (std::size_t d = 0; d < evals.size(); ++d) {
    record_eval(devices[d], evals[d]);
    reward.add(evals[d].mean_reward);
    freq.add(evals[d].mean_freq_mhz);
    freq_stddev.add(evals[d].stddev_freq_mhz);
    power.add(evals[d].mean_power_w);
    violations.add(evals[d].violation_rate);
  }
  fleet.reward.push_back(reward.mean());
  fleet.mean_freq_mhz.push_back(freq.mean());
  fleet.stddev_freq_mhz.push_back(freq_stddev.mean());
  fleet.mean_power_w.push_back(power.mean());
  fleet.violation_rate.push_back(violations.mean());
}

// --- checkpoint payload encoding (DESIGN.md §9) -------------------------

constexpr ckpt::Tag kFedExpTag{'F', 'E', 'X', 'P'};
constexpr ckpt::Tag kLocalExpTag{'L', 'E', 'X', 'P'};

void save_curve(ckpt::Writer& out, const RoundCurve& curve) {
  out.vec_f64(curve.reward);
  out.vec_f64(curve.mean_freq_mhz);
  out.vec_f64(curve.stddev_freq_mhz);
  out.vec_f64(curve.mean_power_w);
  out.vec_f64(curve.violation_rate);
}

RoundCurve restore_curve(ckpt::Reader& in) {
  RoundCurve curve;
  curve.reward = in.vec_f64();
  curve.mean_freq_mhz = in.vec_f64();
  curve.stddev_freq_mhz = in.vec_f64();
  curve.mean_power_w = in.vec_f64();
  curve.violation_rate = in.vec_f64();
  return curve;
}

void save_traffic(ckpt::Writer& out, const fed::TrafficStats& stats) {
  out.u64(stats.uplink_transfers);
  out.u64(stats.uplink_bytes);
  out.u64(stats.downlink_transfers);
  out.u64(stats.downlink_bytes);
  out.u64(stats.retries);
  out.f64(stats.total_latency_s);
}

fed::TrafficStats restore_traffic(ckpt::Reader& in) {
  fed::TrafficStats stats;
  stats.uplink_transfers = in.u64();
  stats.uplink_bytes = in.u64();
  stats.downlink_transfers = in.u64();
  stats.downlink_bytes = in.u64();
  stats.retries = in.u64();
  stats.total_latency_s = in.f64();
  return stats;
}

/// Traffic accrued before the snapshot plus traffic of the resumed
/// process's own transport.
fed::TrafficStats merge_traffic(const fed::TrafficStats& base,
                                const fed::TrafficStats& post) {
  fed::TrafficStats sum = base;
  sum.uplink_transfers += post.uplink_transfers;
  sum.uplink_bytes += post.uplink_bytes;
  sum.downlink_transfers += post.downlink_transfers;
  sum.downlink_bytes += post.downlink_bytes;
  sum.retries += post.retries;
  sum.total_latency_s += post.total_latency_s;
  return sum;
}

void save_app_names(ckpt::Writer& out, const std::vector<std::string>& names) {
  out.u64(names.size());
  for (const std::string& name : names) out.str(name);
}

std::vector<std::string> restore_app_names(ckpt::Reader& in) {
  const std::uint64_t count = in.u64();
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) names.push_back(in.str());
  return names;
}

void save_device_curves(ckpt::Writer& out,
                        const std::vector<RoundCurve>& devices) {
  out.u64(devices.size());
  for (const RoundCurve& curve : devices) save_curve(out, curve);
}

void restore_device_curves(ckpt::Reader& in,
                           std::vector<RoundCurve>& devices) {
  const std::uint64_t count = in.u64();
  if (count != devices.size())
    throw ckpt::StateMismatchError(
        "experiment snapshot holds curves for " + std::to_string(count) +
        " device(s), this run has " + std::to_string(devices.size()));
  for (RoundCurve& curve : devices) curve = restore_curve(in);
}

/// Resolves the resume source: a rotation directory picks its newest valid
/// snapshot (falling back past corrupt entries), a file path is read
/// directly.
std::vector<std::uint8_t> load_resume_payload(const std::string& from,
                                              std::size_t keep) {
  if (std::filesystem::is_directory(from))
    return ckpt::SnapshotRotation(from, keep).load_latest().payload;
  return ckpt::read_snapshot_file(from);
}

/// Opens the rotation for periodic snapshots when enabled.
std::optional<ckpt::SnapshotRotation> make_rotation(
    const CheckpointConfig& checkpoint) {
  if (checkpoint.every_rounds == 0) return std::nullopt;
  if (checkpoint.dir.empty())
    throw ckpt::CkptError(
        "checkpoint.every_rounds is set but checkpoint.dir is empty");
  return ckpt::SnapshotRotation(checkpoint.dir, checkpoint.keep);
}

}  // namespace

FederatedRunResult run_federated(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    const std::vector<sim::AppProfile>& eval_apps, bool eval_each_round) {
  FEDPOWER_EXPECTS(!eval_apps.empty() || !eval_each_round);

  // Fault plan: compromised devices get their controller configs poisoned
  // and their hardware/uplink faults armed before training starts, so
  // attacked runs are a pure function of (config, seed).
  const std::vector<std::size_t> compromised =
      config.faults.compromised_devices(device_apps.size());
  std::vector<ControllerConfig> controller_configs{config.controller};
  if (!compromised.empty() && config.faults.reward_poison_scale != 1.0) {
    controller_configs.assign(device_apps.size(), config.controller);
    for (const std::size_t d : compromised)
      controller_configs[d].reward_poison_scale =
          config.faults.reward_poison_scale;
  }
  runtime::FleetRuntime fleet(
      controller_configs, config.processor, device_apps, config.seed,
      runtime::FleetOptions{config.num_threads, config.lazy_fleet});
  for (const std::size_t d : compromised) {
    runtime::DeviceFaultConfig faults;
    faults.upload.attack = config.faults.attack;
    faults.upload.scale = config.faults.attack_scale;
    faults.upload.stale_rounds = config.faults.stale_rounds;
    faults.upload.start_round = config.faults.start_round;
    faults.hardware = config.faults.hardware;
    fleet.inject_faults(d, faults);
  }

  fed::InProcessTransport transport;
  std::optional<fed::FaultInjectingTransport> fault_injector;
  fed::Transport* wire = &transport;
  if (config.faults.faults_transport()) {
    fault_injector.emplace(&transport, config.faults.transport);
    wire = &*fault_injector;
  }
  // Chaos schedule (DESIGN.md §13): one engine draws the availability/shock
  // plan each round; per-client churn decorators stack on top of whatever
  // `wire` already is (possibly the fault injector), so transport faults
  // and availability churn compose without sharing RNG streams.
  std::optional<chaos::ChaosEngine> chaos_engine;
  std::vector<std::unique_ptr<chaos::ChurnTransport>> churn_links;
  if (config.chaos.enabled) {
    chaos_engine.emplace(config.chaos, fleet.size());
    churn_links.reserve(fleet.size());
    for (std::size_t d = 0; d < fleet.size(); ++d)
      churn_links.push_back(std::make_unique<chaos::ChurnTransport>(wire));
  }
  // Exactly one server drives the rounds: the synchronous
  // FederatedAveraging (with the full defense pipeline available) or the
  // sharded serve pipeline (DESIGN.md §12). The two are config-compatible
  // except for defense, which only the synchronous path routes.
  if (config.serve.enabled && config.defense.enabled)
    throw std::invalid_argument(
        "serve.enabled is incompatible with defense.enabled: the serve "
        "pipeline does not route uploads through the defense screen");
  std::optional<fed::FederatedAveraging> sync_server;
  std::optional<serve::ServeFederation> serve_server;
  if (config.serve.enabled) {
    serve::ServeConfig serve_config;
    serve_config.workers = config.serve.workers;
    serve_config.queue_depth = config.serve.queue_depth;
    serve_config.batch_max = config.serve.batch_max;
    serve_config.mode = config.serve.deterministic
                            ? serve::CommitMode::kDeterministic
                            : serve::CommitMode::kThroughput;
    serve_config.aggregation = config.aggregation;
    serve_config.mixing_rate = config.serve.mixing_rate;
    serve_config.staleness_power = config.serve.staleness_power;
    serve_config.idle_timeout_s = config.serve.idle_timeout_s;
    serve_server.emplace(fleet.clients(), wire, serve_config);
    serve_server->set_local_executor(fleet.executor());
    // Sampling before any resume below: restore_state overrides the
    // participation stream position, the config itself is not state.
    serve_server->set_sampling(config.sampling);
    serve_server->set_quorum(config.quorum);
    serve_server->initialize(fleet.controller(0).local_parameters());
  } else {
    sync_server.emplace(fleet.clients(), wire, config.aggregation);
    sync_server->set_local_executor(fleet.executor());
    sync_server->enable_defense(config.defense);
    sync_server->set_sampling(config.sampling);
    sync_server->set_quorum(config.quorum);
    sync_server->initialize(fleet.controller(0).local_parameters());
  }
  const auto run_round = [&] {
    return serve_server ? serve_server->run_round()
                        : sync_server->run_round();
  };
  const auto global_model = [&]() -> const std::vector<double>& {
    return serve_server ? serve_server->global_model()
                        : sync_server->global_model();
  };
  const auto save_server = [&](ckpt::Writer& out) {
    if (serve_server)
      serve_server->save_state(out);
    else
      sync_server->save_state(out);
  };
  const auto restore_server = [&](ckpt::Reader& in) {
    if (serve_server)
      serve_server->restore_state(in);
    else
      sync_server->restore_state(in);
  };
  if (chaos_engine)
    for (std::size_t d = 0; d < fleet.size(); ++d) {
      if (serve_server)
        serve_server->set_client_transport(d, churn_links[d].get());
      else
        sync_server->set_client_transport(d, churn_links[d].get());
    }
  if (config.deadline_s > 0.0) {
    if (serve_server)
      serve_server->set_round_deadline(config.deadline_s);
    else
      sync_server->set_round_deadline(config.deadline_s);
  }

  const Evaluator evaluator = make_evaluator(config);
  FederatedRunResult result;
  result.devices.resize(fleet.size());
  RobustnessReport& robustness = result.robustness;
  // Robustness history rides in the snapshot only for defended/faulted
  // configs, keeping clean-run snapshots byte-identical to older ones; the
  // chaos/deadline sections likewise only appear when armed.
  const bool chaos_ckpt = config.chaos.enabled || config.deadline_s > 0.0;
  const bool robust_ckpt =
      config.defense.enabled || config.faults.any() || chaos_ckpt;

  // Resume: restore the whole experiment — fleet, server, partial curves
  // and the traffic accrued before the snapshot — then continue the round
  // loop exactly where the snapshotted process stopped.
  std::size_t start_round = 0;
  fed::TrafficStats traffic_baseline;
  if (!config.checkpoint.resume_from.empty()) {
    const std::vector<std::uint8_t> payload =
        load_resume_payload(config.checkpoint.resume_from,
                            config.checkpoint.keep);
    ckpt::Reader in(payload);
    ckpt::expect_tag(in, kFedExpTag, "federated experiment");
    start_round = in.u64();
    fleet.restore_state(in);
    restore_server(in);
    restore_device_curves(in, result.devices);
    result.fleet = restore_curve(in);
    result.eval_app_per_round = restore_app_names(in);
    traffic_baseline = restore_traffic(in);
    if (robust_ckpt) {
      robustness.screened_per_round = in.vec_u64();
      robustness.quarantined_per_round = in.vec_u64();
      robustness.readmitted_per_round = in.vec_u64();
      robustness.clipped_per_round = in.vec_u64();
    }
    if (fault_injector) fault_injector->restore_state(in);
    if (chaos_ckpt) {
      robustness.stragglers_per_round = in.vec_u64();
      robustness.aborted_rounds = in.u64();
    }
    if (chaos_engine) chaos_engine->restore_state(in);
  }
  const std::optional<ckpt::SnapshotRotation> rotation =
      make_rotation(config.checkpoint);

  // Consecutive under-quorum aborts tolerated before the run gives up: a
  // chaos draw can demote or disconnect everyone at once, and a real
  // server would simply start the next round — but a config whose quorum
  // can never hold (deadline below the clean round trip, say) must still
  // fail loudly instead of spinning forever.
  constexpr std::size_t kMaxConsecutiveAborts = 64;
  // Per-round JSON-Lines telemetry (run.metrics_jsonl); append mode so a
  // resumed run continues its predecessor's file. Wall time and RSS here
  // are observability only — they are written to the sidecar file and
  // never feed back into any computation, so determinism holds.
  std::optional<util::JsonlWriter> metrics;
  if (!config.metrics_jsonl.empty()) metrics.emplace(config.metrics_jsonl);
  for (std::size_t round = start_round; round < config.rounds; ++round) {
    const auto round_started =
        std::chrono::steady_clock::now();  // lint: nondet-ok(JSONL wall-time telemetry; never feeds results)
    std::optional<fed::RoundResult> committed;
    std::size_t aborts_in_a_row = 0;
    while (!committed) {
      if (chaos_engine) {
        // Apply this round's chaos plan before any transfer: flip link
        // availability from the engine's mask and deal the workload shock
        // (the shocked device abandons its in-flight application; its next
        // scheduling interval pulls a fresh one from the workload stream).
        const chaos::RoundPlan plan = chaos_engine->begin_round();
        for (std::size_t d = 0; d < churn_links.size(); ++d)
          churn_links[d]->set_online(plan.offline[d] == 0);
        if (plan.shock_device)
          fleet.processor(*plan.shock_device).reset_app();
      }
      try {
        committed = run_round();
      } catch (const fed::QuorumError&) {
        // The aborted round committed nothing — the server's round counter
        // and defense state are untouched — but the sampling, fault and
        // churn streams all advanced, so the retry replays deterministically
        // yet faces fresh conditions (simulated time moved on).
        ++robustness.aborted_rounds;
        if (++aborts_in_a_row >= kMaxConsecutiveAborts) throw;
      }
    }
    const fed::RoundResult round_result = *committed;
    robustness.screened_per_round.push_back(round_result.screened.size());
    robustness.quarantined_per_round.push_back(
        round_result.quarantined.size());
    robustness.readmitted_per_round.push_back(round_result.readmitted.size());
    robustness.clipped_per_round.push_back(round_result.clipped);
    robustness.stragglers_per_round.push_back(round_result.stragglers.size());
    if (eval_each_round) {
      const sim::AppProfile& app = eval_apps[round % eval_apps.size()];
      result.eval_app_per_round.push_back(app.name);
      // Greedy evaluation of the global policy on every device, in
      // parallel: each task builds its own policy instance
      // (nn::Mlp::forward caches activations, so a shared one would race)
      // and runs an episode seeded by (round, device) — independent of the
      // schedule.
      std::vector<EvalResult> evals(fleet.size());
      fleet.for_each_device([&](std::size_t d) {
        const PolicyFn policy = evaluator.neural_policy(global_model());
        evals[d] = evaluator.run_episode(policy, app,
                                         mix_seed(config.seed, round, d));
      });
      record_round(result.devices, result.fleet, evals);
    }
    if (metrics) {
      const double wall_s =
          std::chrono::duration<double>(
              std::chrono::steady_clock::now() -  // lint: nondet-ok(JSONL wall-time telemetry; never feeds results)
              round_started)
              .count();
      metrics->field("round", static_cast<std::uint64_t>(round))
          .field("reward",
                 eval_each_round && !result.fleet.reward.empty()
                     ? result.fleet.reward.back()
                     : std::numeric_limits<double>::quiet_NaN())
          .field("participants",
                 static_cast<std::uint64_t>(round_result.participants.size()))
          .field("screened",
                 static_cast<std::uint64_t>(round_result.screened.size()))
          .field("dropped",
                 static_cast<std::uint64_t>(round_result.dropped.size()))
          .field("stragglers",
                 static_cast<std::uint64_t>(round_result.stragglers.size()))
          .field("aborted", static_cast<std::uint64_t>(aborts_in_a_row))
          .field("rss_bytes", util::resident_bytes())
          .field("wall_s", wall_s);
      metrics->end_line();
    }
    // Lazy fleets return out-of-round devices to their compact cold form:
    // resident memory tracks the per-round working set, not the fleet.
    // (Per-round eval above hydrates everything, so fleet-scale runs skip
    // per-round eval.)
    if (config.lazy_fleet)
      fleet.dehydrate_inactive(round_result.participants);
    if (rotation && (round + 1) % config.checkpoint.every_rounds == 0) {
      ckpt::Writer out;
      ckpt::write_tag(out, kFedExpTag);
      out.u64(round + 1);  // next round to run
      fleet.save_state(out);
      save_server(out);
      save_device_curves(out, result.devices);
      save_curve(out, result.fleet);
      save_app_names(out, result.eval_app_per_round);
      save_traffic(out, merge_traffic(traffic_baseline, transport.stats()));
      if (robust_ckpt) {
        out.vec_u64(robustness.screened_per_round);
        out.vec_u64(robustness.quarantined_per_round);
        out.vec_u64(robustness.readmitted_per_round);
        out.vec_u64(robustness.clipped_per_round);
      }
      if (fault_injector) fault_injector->save_state(out);
      if (chaos_ckpt) {
        out.vec_u64(robustness.stragglers_per_round);
        out.u64(robustness.aborted_rounds);
      }
      if (chaos_engine) chaos_engine->save_state(out);
      rotation->save(out.data());
    }
  }

  result.global_params = global_model();
  result.traffic = merge_traffic(traffic_baseline, transport.stats());
  robustness.compromised = compromised;
  for (const std::uint64_t v : robustness.screened_per_round)
    robustness.total_screened += v;
  for (const std::uint64_t v : robustness.readmitted_per_round)
    robustness.total_readmitted += v;
  for (const std::uint64_t v : robustness.clipped_per_round)
    robustness.total_clipped += v;
  for (const std::uint64_t v : robustness.stragglers_per_round)
    robustness.total_stragglers += v;
  for (const std::uint64_t v : robustness.quarantined_per_round)
    robustness.max_quarantined =
        std::max<std::size_t>(robustness.max_quarantined, v);
  if (const fed::DefensePipeline* defense =
          sync_server ? sync_server->defense() : nullptr) {
    robustness.final_reputation.reserve(fleet.size());
    for (std::size_t d = 0; d < fleet.size(); ++d)
      robustness.final_reputation.push_back(defense->reputation(d));
  }
  if (fault_injector) robustness.transport = fault_injector->fault_stats();
  if (chaos_engine) robustness.chaos = chaos_engine->stats();
  return result;
}

LocalRunResult run_local_only(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    const std::vector<sim::AppProfile>& eval_apps, bool eval_each_round) {
  FEDPOWER_EXPECTS(!eval_apps.empty() || !eval_each_round);
  runtime::FleetRuntime fleet(
      {config.controller}, config.processor, device_apps, config.seed,
      runtime::FleetOptions{config.num_threads, config.lazy_fleet});

  const Evaluator evaluator = make_evaluator(config);
  LocalRunResult result;
  result.devices.resize(fleet.size());

  std::size_t start_round = 0;
  if (!config.checkpoint.resume_from.empty()) {
    const std::vector<std::uint8_t> payload =
        load_resume_payload(config.checkpoint.resume_from,
                            config.checkpoint.keep);
    ckpt::Reader in(payload);
    ckpt::expect_tag(in, kLocalExpTag, "local-only experiment");
    start_round = in.u64();
    fleet.restore_state(in);
    restore_device_curves(in, result.devices);
    result.fleet = restore_curve(in);
    result.eval_app_per_round = restore_app_names(in);
  }
  const std::optional<ckpt::SnapshotRotation> rotation =
      make_rotation(config.checkpoint);

  for (std::size_t round = start_round; round < config.rounds; ++round) {
    fleet.run_local_round();
    if (eval_each_round) {
      const sim::AppProfile& app = eval_apps[round % eval_apps.size()];
      result.eval_app_per_round.push_back(app.name);
      std::vector<EvalResult> evals(fleet.size());
      fleet.for_each_device([&](std::size_t d) {
        const PolicyFn policy =
            evaluator.neural_policy(fleet.controller(d).local_parameters());
        evals[d] = evaluator.run_episode(policy, app,
                                         mix_seed(config.seed, round, d));
      });
      record_round(result.devices, result.fleet, evals);
    }
    if (rotation && (round + 1) % config.checkpoint.every_rounds == 0) {
      ckpt::Writer out;
      ckpt::write_tag(out, kLocalExpTag);
      out.u64(round + 1);
      fleet.save_state(out);
      save_device_curves(out, result.devices);
      save_curve(out, result.fleet);
      save_app_names(out, result.eval_app_per_round);
      rotation->save(out.data());
    }
  }

  for (std::size_t d = 0; d < fleet.size(); ++d)
    result.final_params.push_back(fleet.controller(d).local_parameters());
  return result;
}

namespace {

/// Device running the Profit+CollabPolicy baseline.
struct TabularDevice {
  sim::Processor* processor = nullptr;
  std::shared_ptr<baselines::CollabProfitClient> client;
  sim::TelemetrySample last_sample{};
  bool have_state = false;
  double f_max_mhz = 0.0;
  double dvfs_interval_s = 0.5;

  void step() {
    if (!have_state) {
      last_sample = processor->run_interval(dvfs_interval_s);
      have_state = true;
    }
    const std::vector<double> features =
        baselines::profit_features(last_sample, f_max_mhz);
    const std::size_t action = client->select_action(features);
    processor->set_level(action);
    const sim::TelemetrySample sample =
        processor->run_interval(dvfs_interval_s);
    const double reward = client->local_agent().reward()(sample);
    client->record(features, action, reward);
    last_sample = sample;
  }
};

}  // namespace

PolicyFn CollabRunResult::policy(std::size_t device, double f_max_mhz) const {
  FEDPOWER_EXPECTS(device < clients.size());
  auto client = clients[device];
  return [client, f_max_mhz](const sim::TelemetrySample& sample) {
    return client->greedy_action(
        baselines::profit_features(sample, f_max_mhz));
  };
}

CollabRunResult run_collab_profit(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps) {
  FEDPOWER_EXPECTS(!device_apps.empty());
  util::Rng root(config.seed);
  // Same hardware-construction loop (and RNG split order) as the neural
  // fleets; only the mounted brain differs.
  std::vector<runtime::DeviceHardware> hardware =
      runtime::make_hardware(config.processor, device_apps, root);

  baselines::ProfitConfig profit_config;
  profit_config.action_count = config.processor.vf_table.size();
  profit_config.p_crit_w = config.controller.p_crit_w;

  std::vector<TabularDevice> devices;
  devices.reserve(hardware.size());
  for (auto& hw : hardware) {
    TabularDevice device;
    device.processor = hw.processor.get();
    device.client = std::make_shared<baselines::CollabProfitClient>(
        profit_config, hw.brain_rng);
    device.f_max_mhz = config.processor.vf_table.f_max_mhz();
    device.dvfs_interval_s = config.controller.dvfs_interval_s;
    devices.push_back(std::move(device));
  }

  baselines::CollabPolicyServer server(
      devices.front().client->local_agent().discretizer().state_count());

  std::unique_ptr<runtime::ThreadPool> pool;
  const std::size_t threads =
      runtime::resolve_num_threads(config.num_threads);
  if (threads > 1) pool = std::make_unique<runtime::ThreadPool>(threads);

  const std::size_t steps = config.controller.steps_per_round;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    // Local training in parallel (devices are disjoint), then policy
    // export / aggregation / broadcast serially in device order.
    const auto train = [&](std::size_t d) {
      for (std::size_t t = 0; t < steps; ++t) devices[d].step();
    };
    if (pool)
      pool->parallel_for(0, devices.size(), train);
    else
      for (std::size_t d = 0; d < devices.size(); ++d) train(d);

    std::vector<std::vector<baselines::PolicyEntry>> summaries;
    summaries.reserve(devices.size());
    for (auto& device : devices)
      summaries.push_back(device.client->export_policy());
    server.aggregate(summaries);
    for (auto& device : devices)
      device.client->receive_global(server.global());
  }

  CollabRunResult result;
  for (auto& device : devices) result.clients.push_back(device.client);
  return result;
}

std::vector<AppMetrics> evaluate_apps(const Evaluator& evaluator,
                                      const PolicyFn& policy,
                                      const std::vector<sim::AppProfile>& apps,
                                      std::uint64_t seed) {
  std::vector<AppMetrics> metrics;
  metrics.reserve(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const EvalResult result =
        evaluator.run_to_completion(policy, apps[i], mix_seed(seed, i, 0));
    AppMetrics m;
    m.app = result.app;
    m.exec_time_s = result.exec_time_s;
    m.ips = result.mean_ips;
    m.power_w = result.mean_power_w;
    metrics.push_back(std::move(m));
  }
  return metrics;
}

}  // namespace fedpower::core
