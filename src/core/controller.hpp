// The per-device power controller (paper §III-A): an RL agent that
// alternates between observing the processor state and setting a V/f level
// every DVFS interval, learning online which frequency keeps power just
// below the constraint for the current workload.
//
// PowerController also implements fed::FederatedClient, so a set of
// controllers can be handed directly to fed::FederatedAveraging — that
// composition *is* the paper's federated power control (Fig. 1).
#pragma once

#include <span>
#include <vector>

#include <optional>

#include "ckpt/binary_io.hpp"
#include "fed/federation.hpp"
#include "rl/drift.hpp"
#include "rl/neural_agent.hpp"
#include "rl/reward.hpp"
#include "rl/state.hpp"
#include "sim/device.hpp"

namespace fedpower::core {

/// Full configuration of one power controller; defaults are the paper's
/// Table I.
struct ControllerConfig {
  rl::NeuralAgentConfig agent{};
  rl::FeaturizerConfig featurizer{};
  double p_crit_w = 0.6;            // power constraint
  double k_offset_w = 0.05;         // reward ramp width
  double dvfs_interval_s = 0.5;     // Delta_DVFS = 500 ms
  std::size_t steps_per_round = 100;  // T
  /// Optional extension (off in the paper): re-raise the exploration
  /// temperature to reheat_tau when the reward drops persistently — i.e.
  /// when the workload has shifted away from what the policy learned.
  bool drift_adaptation = false;
  rl::DriftConfig drift{};
  double reheat_tau = 0.45;
  /// Reward-poisoning attack (DESIGN.md §10): training rewards are
  /// multiplied by this before the agent records them, so a compromised
  /// device learns an inverted/garbled objective. Greedy evaluation stays
  /// honest — the attack corrupts learning, not measurement. 1 = honest.
  double reward_poison_scale = 1.0;
};

class PowerController final : public fed::FederatedClient {
 public:
  /// The device is non-owning and must outlive the controller. Any
  /// sim::CpuDevice works: the single-core Processor or the 4-core
  /// MulticoreProcessor.
  PowerController(ControllerConfig config, sim::CpuDevice* processor,
                  util::Rng rng);

  /// One training interaction (one iteration of Algorithm 1's loop):
  /// observe state, sample an action from the softmax policy, execute it
  /// for one DVFS interval, compute the reward and record the transition.
  /// Returns the telemetry of the executed interval.
  sim::TelemetrySample step();

  /// Runs n training steps.
  void run_steps(std::size_t n);

  /// One greedy (evaluation) interaction: no exploration, no learning.
  sim::TelemetrySample greedy_step();

  // --- fed::FederatedClient --------------------------------------------
  void receive_global(std::span<const double> params) override;
  std::vector<double> local_parameters() const override;
  void run_local_round() override { run_steps(config_.steps_per_round); }
  std::size_t local_sample_count() const override;

  // --- access ------------------------------------------------------------
  rl::NeuralBanditAgent& agent() noexcept { return agent_; }
  const rl::NeuralBanditAgent& agent() const noexcept { return agent_; }
  sim::CpuDevice& device() noexcept { return *processor_; }
  const rl::PaperReward& reward() const noexcept { return reward_; }
  const rl::StateFeaturizer& featurizer() const noexcept {
    return featurizer_;
  }
  const ControllerConfig& config() const noexcept { return config_; }

  /// Reward of the most recent (training or greedy) step.
  double last_reward() const noexcept { return last_reward_; }

  /// Drift detections so far (0 unless drift_adaptation is enabled).
  std::size_t drift_detections() const noexcept {
    return drift_ ? drift_->detections() : 0;
  }

  /// Serializes the agent, the drift monitor (when enabled) and the
  /// observe/act bootstrap state (last telemetry sample + reward). The
  /// processor is snapshotted separately by whoever owns it.
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

 private:
  const sim::TelemetrySample& observed_state();

  ControllerConfig config_;       // lint: ckpt-skip(construction config, fixed for the run)
  sim::CpuDevice* processor_;     // lint: ckpt-skip(non-owning; the device owner snapshots it)
  rl::NeuralBanditAgent agent_;
  rl::StateFeaturizer featurizer_;  // lint: ckpt-skip(stateless projection of config constants)
  rl::PaperReward reward_;          // lint: ckpt-skip(stateless function of config constants)
  std::optional<rl::DriftMonitor> drift_;
  sim::TelemetrySample last_sample_{};
  bool have_state_ = false;
  double last_reward_ = 0.0;
};

}  // namespace fedpower::core
