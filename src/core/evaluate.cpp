#include "core/evaluate.hpp"

#include <memory>

#include "nn/mlp.hpp"
#include "rl/policy.hpp"
#include "sim/workload.hpp"
#include "util/stats.hpp"

namespace fedpower::core {

Evaluator::Evaluator(ControllerConfig config, EvalConfig eval)
    : config_(config), eval_(eval) {
  FEDPOWER_EXPECTS(eval.dvfs_interval_s > 0.0);
  FEDPOWER_EXPECTS(eval.episode_intervals > 0);
  FEDPOWER_EXPECTS(eval.completion_timeout_s > 0.0);
}

PolicyFn Evaluator::neural_policy(std::span<const double> params) const {
  // A fresh model instance shaped like the controller's network, holding a
  // snapshot of the given parameters.
  auto rng = util::Rng{0};  // init values are overwritten immediately
  auto model = std::make_shared<nn::Mlp>(
      nn::make_mlp(config_.agent.state_dim, config_.agent.hidden_sizes,
                   config_.agent.action_count, rng));
  model->set_parameters(params);
  const rl::StateFeaturizer featurizer(config_.featurizer);
  return [model, featurizer](const sim::TelemetrySample& sample) {
    const std::vector<double> features = featurizer.featurize(sample);
    const nn::Matrix mu = model->forward(nn::Matrix::row_vector(features));
    return rl::argmax(mu.data());
  };
}

EvalResult Evaluator::run(const PolicyFn& policy, const sim::AppProfile& app,
                          std::uint64_t seed, bool to_completion) const {
  sim::Processor processor(eval_.processor, util::Rng{seed});
  sim::SingleAppWorkload workload(app);
  processor.set_workload(&workload);

  const rl::PaperReward reward(config_.p_crit_w, config_.k_offset_w,
                               config_.featurizer.f_max_mhz);

  util::RunningStats reward_stats;
  util::RunningStats power_stats;
  util::RunningStats freq_stats;
  util::RunningStats ips_stats;
  std::size_t violations = 0;

  // Bootstrap observation at the lowest level (safe default).
  processor.set_level(0);
  sim::TelemetrySample sample =
      processor.run_interval(eval_.dvfs_interval_s);

  EvalResult result;
  result.app = app.name;

  const std::size_t max_intervals =
      to_completion
          ? static_cast<std::size_t>(eval_.completion_timeout_s /
                                     eval_.dvfs_interval_s)
          : eval_.episode_intervals;

  for (std::size_t i = 0; i < max_intervals; ++i) {
    processor.set_level(policy(sample));
    sample = processor.run_interval(eval_.dvfs_interval_s);
    reward_stats.add(reward(sample));
    power_stats.add(sample.power_w);
    freq_stats.add(sample.freq_mhz);
    ips_stats.add(sample.ips);
    if (sample.true_power_w > config_.p_crit_w) ++violations;
    ++result.intervals;
    if (to_completion && !processor.completed_runs().empty()) {
      const sim::AppExecution& done = processor.completed_runs().front();
      result.exec_time_s = done.exec_time_s;
      result.energy_j = done.energy_j;
      result.edp = done.energy_j * done.exec_time_s;
      result.mean_ips = done.avg_ips;
      result.completed = true;
      break;
    }
  }

  result.mean_reward = reward_stats.mean();
  result.mean_power_w = power_stats.mean();
  result.mean_freq_mhz = freq_stats.mean();
  result.stddev_freq_mhz = freq_stats.stddev();
  if (!result.completed) result.mean_ips = ips_stats.mean();
  result.violation_rate =
      result.intervals > 0
          ? static_cast<double>(violations) /
                static_cast<double>(result.intervals)
          : 0.0;
  return result;
}

std::vector<EvalResult> Evaluator::run_switching_episode(
    const PolicyFn& policy, const std::vector<sim::AppProfile>& apps,
    std::size_t segment_intervals, std::uint64_t seed) const {
  FEDPOWER_EXPECTS(!apps.empty());
  FEDPOWER_EXPECTS(segment_intervals > 0);
  sim::Processor processor(eval_.processor, util::Rng{seed});
  const rl::PaperReward reward(config_.p_crit_w, config_.k_offset_w,
                               config_.featurizer.f_max_mhz);

  processor.set_level(0);
  // One workload object per segment; the processor's pointer is swapped at
  // each boundary and the in-flight app is aborted, modeling a context
  // switch to a different program.
  std::vector<EvalResult> results;
  results.reserve(apps.size());
  sim::TelemetrySample sample{};
  bool have_state = false;
  for (const sim::AppProfile& app : apps) {
    sim::SingleAppWorkload workload(app);
    processor.set_workload(&workload);
    processor.reset_app();
    if (!have_state) {
      sample = processor.run_interval(eval_.dvfs_interval_s);
      have_state = true;
    }
    EvalResult segment;
    segment.app = app.name;
    util::RunningStats reward_stats;
    util::RunningStats power_stats;
    util::RunningStats freq_stats;
    util::RunningStats ips_stats;
    std::size_t violations = 0;
    for (std::size_t i = 0; i < segment_intervals; ++i) {
      processor.set_level(policy(sample));
      sample = processor.run_interval(eval_.dvfs_interval_s);
      reward_stats.add(reward(sample));
      power_stats.add(sample.power_w);
      freq_stats.add(sample.freq_mhz);
      ips_stats.add(sample.ips);
      if (sample.true_power_w > config_.p_crit_w) ++violations;
      ++segment.intervals;
    }
    segment.mean_reward = reward_stats.mean();
    segment.mean_power_w = power_stats.mean();
    segment.mean_freq_mhz = freq_stats.mean();
    segment.stddev_freq_mhz = freq_stats.stddev();
    segment.mean_ips = ips_stats.mean();
    segment.violation_rate =
        static_cast<double>(violations) /
        static_cast<double>(segment.intervals);
    results.push_back(std::move(segment));
  }
  return results;
}

EvalResult Evaluator::run_episode(const PolicyFn& policy,
                                  const sim::AppProfile& app,
                                  std::uint64_t seed) const {
  return run(policy, app, seed, /*to_completion=*/false);
}

EvalResult Evaluator::run_to_completion(const PolicyFn& policy,
                                        const sim::AppProfile& app,
                                        std::uint64_t seed) const {
  return run(policy, app, seed, /*to_completion=*/true);
}

}  // namespace fedpower::core
