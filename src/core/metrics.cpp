#include "core/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace fedpower::core {

CurveSummary summarize(const RoundCurve& curve, std::size_t tail) {
  FEDPOWER_EXPECTS(!curve.reward.empty());
  const std::size_t n = curve.reward.size();
  FEDPOWER_EXPECTS(curve.mean_power_w.size() == n &&
                   curve.mean_freq_mhz.size() == n &&
                   curve.violation_rate.size() == n);
  const std::size_t from = (tail == 0 || tail >= n) ? 0 : n - tail;

  util::RunningStats reward;
  util::RunningStats power;
  util::RunningStats freq;
  util::RunningStats violation;
  for (std::size_t r = from; r < n; ++r) {
    reward.add(curve.reward[r]);
    power.add(curve.mean_power_w[r]);
    freq.add(curve.mean_freq_mhz[r]);
    violation.add(curve.violation_rate[r]);
  }
  CurveSummary summary;
  summary.mean_reward = reward.mean();
  summary.min_reward = reward.min();
  summary.mean_power_w = power.mean();
  summary.mean_freq_mhz = freq.mean();
  summary.violation_rate = violation.mean();
  summary.rounds = n - from;
  return summary;
}

CurveSummary summarize(const std::vector<RoundCurve>& devices,
                       std::size_t tail) {
  FEDPOWER_EXPECTS(!devices.empty());
  CurveSummary total;
  double min_reward = 2.0;
  for (const RoundCurve& curve : devices) {
    const CurveSummary s = summarize(curve, tail);
    total.mean_reward += s.mean_reward;
    total.mean_power_w += s.mean_power_w;
    total.mean_freq_mhz += s.mean_freq_mhz;
    total.violation_rate += s.violation_rate;
    total.rounds = s.rounds;
    min_reward = std::min(min_reward, s.min_reward);
  }
  const double inv = 1.0 / static_cast<double>(devices.size());
  total.mean_reward *= inv;
  total.mean_power_w *= inv;
  total.mean_freq_mhz *= inv;
  total.violation_rate *= inv;
  total.min_reward = min_reward;
  return total;
}

AppMetricsSummary summarize(const std::vector<AppMetrics>& metrics) {
  FEDPOWER_EXPECTS(!metrics.empty());
  AppMetricsSummary summary;
  util::RunningStats time;
  util::RunningStats ips;
  util::RunningStats power;
  for (const AppMetrics& m : metrics) {
    time.add(m.exec_time_s);
    ips.add(m.ips);
    power.add(m.power_w);
  }
  summary.mean_exec_time_s = time.mean();
  summary.mean_ips = ips.mean();
  summary.mean_power_w = power.mean();
  summary.max_exec_time_s = time.max();
  return summary;
}

std::vector<AppComparison> compare(const std::vector<AppMetrics>& baseline,
                                   const std::vector<AppMetrics>& candidate) {
  FEDPOWER_EXPECTS(baseline.size() == candidate.size());
  std::vector<AppComparison> comparisons;
  comparisons.reserve(baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    FEDPOWER_EXPECTS(baseline[i].app == candidate[i].app);
    AppComparison c;
    c.app = baseline[i].app;
    c.exec_time_change_pct = util::percent_change(baseline[i].exec_time_s,
                                                  candidate[i].exec_time_s);
    c.ips_change_pct =
        util::percent_change(baseline[i].ips, candidate[i].ips);
    c.power_delta_w = candidate[i].power_w - baseline[i].power_w;
    comparisons.push_back(std::move(c));
  }
  return comparisons;
}

ComparisonSummary summarize(const std::vector<AppComparison>& comparisons) {
  FEDPOWER_EXPECTS(!comparisons.empty());
  ComparisonSummary summary;
  util::RunningStats time;
  util::RunningStats ips;
  for (const AppComparison& c : comparisons) {
    time.add(c.exec_time_change_pct);
    ips.add(c.ips_change_pct);
  }
  summary.mean_exec_time_change_pct = time.mean();
  summary.best_exec_time_change_pct = time.min();
  summary.mean_ips_change_pct = ips.mean();
  summary.best_ips_change_pct = ips.max();
  return summary;
}

}  // namespace fedpower::core
