// Experiment runners reproducing the paper's evaluation protocol (§IV).
// These are shared between the benchmark harnesses, the examples and the
// integration tests, so every consumer measures the exact same procedure:
//
//   * run_federated     — N devices + FedAvg server (the paper's technique),
//                         optional per-round greedy evaluation of the global
//                         policy (Fig. 3 right column, Fig. 4).
//   * run_local_only    — the same devices with no collaboration
//                         (Fig. 3 left column).
//   * run_collab_profit — the Profit+CollabPolicy state of the art
//                         (Table III, Fig. 5).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/collab_policy.hpp"
#include "core/controller.hpp"
#include "core/evaluate.hpp"
#include "fed/transport.hpp"
#include "sim/application.hpp"

namespace fedpower::core {

/// Crash-safe checkpointing of a federated/local run (DESIGN.md §9).
/// With every_rounds > 0, run_federated / run_local_only write a durable
/// snapshot of the whole experiment — fleet, server, partial curves,
/// traffic baseline — into `dir` after each multiple of every_rounds, kept
/// `keep` deep. A run restarted with resume_from pointing at a snapshot
/// file (or at the rotation directory, to pick the newest valid entry)
/// continues from the saved round and finishes bit-identical to the
/// uninterrupted run.
struct CheckpointConfig {
  std::size_t every_rounds = 0;  ///< 0 disables periodic snapshots
  std::string dir;               ///< rotation directory (required if enabled)
  std::size_t keep = 3;          ///< rotation depth
  std::string resume_from;       ///< snapshot file or rotation dir; empty =
                                 ///< start fresh
};

struct ExperimentConfig {
  ControllerConfig controller{};
  sim::ProcessorConfig processor{};
  EvalConfig eval{};
  std::size_t rounds = 100;  // R
  std::uint64_t seed = 42;
  /// Worker threads for device training/evaluation (runtime::FleetRuntime).
  /// 1 = serial (the default), 0 = one per hardware thread. Results are
  /// bit-identical for every value (DESIGN.md §7).
  std::size_t num_threads = 1;
  CheckpointConfig checkpoint{};
};

/// Per-round evaluation curves of one device's policy.
struct RoundCurve {
  std::vector<double> reward;
  std::vector<double> mean_freq_mhz;
  std::vector<double> stddev_freq_mhz;
  std::vector<double> mean_power_w;
  std::vector<double> violation_rate;
};

struct FederatedRunResult {
  std::vector<RoundCurve> devices;         ///< global policy, per device
  /// Fleet-level curve: per round, the across-device mean of each
  /// per-device value (telemetry is collected per device — possibly on
  /// different threads — then merged through util::RunningStats).
  RoundCurve fleet;
  std::vector<double> global_params;       ///< final global model
  fed::TrafficStats traffic;
  std::vector<std::string> eval_app_per_round;
};

struct LocalRunResult {
  std::vector<RoundCurve> devices;          ///< each device's own policy
  RoundCurve fleet;                         ///< across-device means per round
  std::vector<std::vector<double>> final_params;
  std::vector<std::string> eval_app_per_round;
};

/// Trains the federated power control. device_apps[i] is the training
/// application set of device i; eval_apps drives the per-round evaluation
/// (cycling one app per round, as in §IV-A). Pass eval_each_round = false
/// to skip evaluation (faster, e.g. for Table III).
FederatedRunResult run_federated(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    const std::vector<sim::AppProfile>& eval_apps, bool eval_each_round);

/// Trains one isolated controller per device (no server, no averaging).
LocalRunResult run_local_only(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    const std::vector<sim::AppProfile>& eval_apps, bool eval_each_round);

/// Result of training the Profit+CollabPolicy baseline: per-device policies
/// ready for evaluation.
struct CollabRunResult {
  std::vector<std::shared_ptr<baselines::CollabProfitClient>> clients;
  /// Greedy evaluation policy of device i (local/global arbitration, no
  /// exploration).
  PolicyFn policy(std::size_t device, double f_max_mhz) const;
};

/// Trains the state-of-the-art baseline with the same round structure
/// (R rounds of T steps, aggregation after each round).
CollabRunResult run_collab_profit(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps);

/// Per-application completion metrics of a policy (Table III rows, Fig. 5
/// bars): mean over devices is up to the caller.
struct AppMetrics {
  std::string app;
  double exec_time_s = 0.0;
  double ips = 0.0;
  double power_w = 0.0;
};

/// Runs every application to completion under the given policy and reports
/// the Table III metrics.
std::vector<AppMetrics> evaluate_apps(const Evaluator& evaluator,
                                      const PolicyFn& policy,
                                      const std::vector<sim::AppProfile>& apps,
                                      std::uint64_t seed);

}  // namespace fedpower::core
