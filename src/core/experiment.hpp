// Experiment runners reproducing the paper's evaluation protocol (§IV).
// These are shared between the benchmark harnesses, the examples and the
// integration tests, so every consumer measures the exact same procedure:
//
//   * run_federated     — N devices + FedAvg server (the paper's technique),
//                         optional per-round greedy evaluation of the global
//                         policy (Fig. 3 right column, Fig. 4).
//   * run_local_only    — the same devices with no collaboration
//                         (Fig. 3 left column).
//   * run_collab_profit — the Profit+CollabPolicy state of the art
//                         (Table III, Fig. 5).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/collab_policy.hpp"
#include "chaos/engine.hpp"
#include "core/controller.hpp"
#include "core/evaluate.hpp"
#include "fed/aggregate.hpp"
#include "fed/byzantine.hpp"
#include "fed/defense.hpp"
#include "fed/fault_injection.hpp"
#include "fed/transport.hpp"
#include "sim/application.hpp"
#include "sim/processor.hpp"

namespace fedpower::core {

/// Crash-safe checkpointing of a federated/local run (DESIGN.md §9).
/// With every_rounds > 0, run_federated / run_local_only write a durable
/// snapshot of the whole experiment — fleet, server, partial curves,
/// traffic baseline — into `dir` after each multiple of every_rounds, kept
/// `keep` deep. A run restarted with resume_from pointing at a snapshot
/// file (or at the rotation directory, to pick the newest valid entry)
/// continues from the saved round and finishes bit-identical to the
/// uninterrupted run.
struct CheckpointConfig {
  std::size_t every_rounds = 0;  ///< 0 disables periodic snapshots
  std::string dir;               ///< rotation directory (required if enabled)
  std::size_t keep = 3;          ///< rotation depth
  std::string resume_from;       ///< snapshot file or rotation dir; empty =
                                 ///< start fresh
};

/// Fleet-level fault/attack plan for robustness experiments (DESIGN.md
/// §10). The compromised set is deterministic: the ceil(fraction * N)
/// highest-index devices, so the same config always attacks the same
/// devices regardless of thread count or platform.
struct FaultPlanConfig {
  /// What compromised devices upload (fed::UploadAttack::kNone with a
  /// non-empty compromised set still applies the hardware/reward faults).
  fed::UploadAttack attack = fed::UploadAttack::kNone;
  /// Fraction of the fleet that is compromised (ceil(fraction * N) highest
  /// indices); 0 = everyone honest.
  double fraction = 0.0;
  /// Magnitude for sign-flip / scale attacks.
  double attack_scale = 25.0;
  /// Replay lag for stale-replay attacks.
  std::size_t stale_rounds = 5;
  /// First local round at which upload attacks activate.
  std::size_t start_round = 0;
  /// Training rewards of compromised devices are multiplied by this
  /// (ControllerConfig::reward_poison_scale); 1 = honest learning.
  double reward_poison_scale = 1.0;
  /// Hardware faults injected into compromised devices' processors.
  sim::HardwareFaultConfig hardware{};
  /// Transport-level fault injection applied to the whole federation's
  /// shared transport (honest and compromised devices alike — links do not
  /// know who is malicious).
  fed::FaultInjectionConfig transport{};

  bool compromises_devices() const noexcept {
    return fraction > 0.0 &&
           (attack != fed::UploadAttack::kNone || hardware.any() ||
            reward_poison_scale != 1.0);
  }
  bool faults_transport() const noexcept {
    return transport.drop_probability > 0.0 ||
           transport.delay_probability > 0.0 ||
           transport.truncate_probability > 0.0 ||
           transport.disconnect_probability > 0.0;
  }
  bool any() const noexcept {
    return compromises_devices() || faults_transport();
  }
  /// The compromised device indices for a fleet of the given size, sorted.
  std::vector<std::size_t> compromised_devices(std::size_t fleet_size) const;
};

/// Routing the federated rounds through the sharded serve pipeline
/// (serve::ServeFederation; run_federated only). Plain data here so the
/// experiment header does not pull in the serve subsystem. Deterministic
/// commit mode reproduces the synchronous server bit-identically at any
/// worker count; throughput mode merges FedAsync-style with staleness
/// discounting. Mutually exclusive with the defense pipeline (the serve
/// driver does not route uploads through defense screening).
struct ServeExperimentConfig {
  bool enabled = false;
  std::size_t workers = 1;
  std::size_t queue_depth = 256;
  std::size_t batch_max = 16;
  bool deterministic = true;   ///< false = throughput (FedAsync) commit
  double mixing_rate = 0.5;    ///< throughput mode: FedAsync alpha
  double staleness_power = 1.0;
  /// Idle-connection deadline for the TCP front end, seconds; 0 disables
  /// (serve::ServeConfig::idle_timeout_s). Only observable when an
  /// EpollFrontEnd drives the server — the in-process pipeline has no
  /// sockets to reap.
  double idle_timeout_s = 0.0;
};

struct ExperimentConfig {
  ControllerConfig controller{};
  sim::ProcessorConfig processor{};
  EvalConfig eval{};
  std::size_t rounds = 100;  // R
  std::uint64_t seed = 42;
  /// Worker threads for device training/evaluation (runtime::FleetRuntime).
  /// 1 = serial (the default), 0 = one per hardware thread. Results are
  /// bit-identical for every value (DESIGN.md §7).
  std::size_t num_threads = 1;
  CheckpointConfig checkpoint{};
  /// Server aggregation rule (run_federated only).
  fed::AggregationMode aggregation = fed::AggregationMode::kUnweightedMean;
  /// Per-round client sampling (run_federated only). The default is the
  /// paper's full participation; fleet-scale runs set fraction « 1 so the
  /// per-round cost follows the sample, not the fleet (DESIGN.md §11).
  fed::SamplingConfig sampling{};
  /// Minimum surviving uploads per round, checked against the round's
  /// aggregation-eligible participants (fed::FederatedAveraging::set_quorum;
  /// run_federated only).
  std::size_t quorum = 1;
  /// Lazy device instantiation (runtime::FleetOptions::lazy): sampled-out
  /// devices stay as compact cold records and run_federated dehydrates
  /// devices between rounds, so resident memory follows the per-round
  /// working set. Results are bit-identical to an eager fleet.
  bool lazy_fleet = false;
  /// Server-side Byzantine defense (run_federated only; off by default).
  fed::DefenseConfig defense{};
  /// Client/transport fault injection (run_federated only; clean default).
  FaultPlanConfig faults{};
  /// Sharded serve pipeline routing (run_federated only; off by default).
  ServeExperimentConfig serve{};
  /// Deterministic chaos schedule: availability churn and workload shocks
  /// drawn each round from one seeded stream (run_federated only; off by
  /// default). Composes with `faults` — transport-level fault injection
  /// keeps its own per-transfer stream (DESIGN.md §13).
  chaos::ChaosConfig chaos{};
  /// Per-round transport-latency budget per client, in simulated seconds;
  /// 0 disables. Over-budget participants are demoted to dropouts
  /// (stragglers) instead of blocking the round — see
  /// fed::FederatedAveraging::set_round_deadline (run_federated only).
  double deadline_s = 0.0;
  /// Path for per-round JSON-Lines metrics (round index, reward, screening
  /// and straggler counts, RSS, wall time); empty disables. Streaming
  /// telemetry, not a durable artifact: lines flush per round, so a killed
  /// soak keeps every completed round's record (run_federated only).
  std::string metrics_jsonl;
};

/// Per-round evaluation curves of one device's policy.
struct RoundCurve {
  std::vector<double> reward;
  std::vector<double> mean_freq_mhz;
  std::vector<double> stddev_freq_mhz;
  std::vector<double> mean_power_w;
  std::vector<double> violation_rate;
};

/// What the defense pipeline and fault injection did over a federated run,
/// one entry per completed round (all empty/zero when defense and faults
/// are off). Checkpointed with the experiment, so a resumed run reports
/// the same history as the uninterrupted one.
struct RobustnessReport {
  std::vector<std::uint64_t> screened_per_round;
  std::vector<std::uint64_t> quarantined_per_round;
  std::vector<std::uint64_t> readmitted_per_round;
  std::vector<std::uint64_t> clipped_per_round;
  /// Participants demoted to dropouts by the round deadline, per round
  /// (checkpointed only when the deadline or the chaos engine is armed,
  /// to keep older snapshot layouts byte-stable).
  std::vector<std::uint64_t> stragglers_per_round;
  /// Rounds that aborted below quorum and were retried (checkpointed with
  /// the chaos section). The fault/churn streams advance across an abort,
  /// so every retry faces fresh conditions — a soak rides out a bad draw
  /// instead of dying on it.
  std::uint64_t aborted_rounds = 0;
  std::size_t total_screened = 0;
  std::size_t total_readmitted = 0;
  std::size_t total_clipped = 0;
  std::size_t total_stragglers = 0;
  /// Peak simultaneous quarantine population over the run.
  std::size_t max_quarantined = 0;
  /// Final per-device reputation (empty when defense is off).
  std::vector<double> final_reputation;
  /// Devices the fault plan compromised, sorted (empty when clean).
  std::vector<std::size_t> compromised;
  /// Transport-level fault injection counters (zero when clean).
  fed::FaultInjectionStats transport;
  /// Chaos schedule counters (zero when the chaos engine is off).
  chaos::ChaosStats chaos;
};

struct FederatedRunResult {
  std::vector<RoundCurve> devices;         ///< global policy, per device
  /// Fleet-level curve: per round, the across-device mean of each
  /// per-device value (telemetry is collected per device — possibly on
  /// different threads — then merged through util::RunningStats).
  RoundCurve fleet;
  std::vector<double> global_params;       ///< final global model
  fed::TrafficStats traffic;
  std::vector<std::string> eval_app_per_round;
  RobustnessReport robustness;
};

struct LocalRunResult {
  std::vector<RoundCurve> devices;          ///< each device's own policy
  RoundCurve fleet;                         ///< across-device means per round
  std::vector<std::vector<double>> final_params;
  std::vector<std::string> eval_app_per_round;
};

/// Trains the federated power control. device_apps[i] is the training
/// application set of device i; eval_apps drives the per-round evaluation
/// (cycling one app per round, as in §IV-A). Pass eval_each_round = false
/// to skip evaluation (faster, e.g. for Table III).
FederatedRunResult run_federated(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    const std::vector<sim::AppProfile>& eval_apps, bool eval_each_round);

/// Trains one isolated controller per device (no server, no averaging).
LocalRunResult run_local_only(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    const std::vector<sim::AppProfile>& eval_apps, bool eval_each_round);

/// Result of training the Profit+CollabPolicy baseline: per-device policies
/// ready for evaluation.
struct CollabRunResult {
  std::vector<std::shared_ptr<baselines::CollabProfitClient>> clients;
  /// Greedy evaluation policy of device i (local/global arbitration, no
  /// exploration).
  PolicyFn policy(std::size_t device, double f_max_mhz) const;
};

/// Trains the state-of-the-art baseline with the same round structure
/// (R rounds of T steps, aggregation after each round).
CollabRunResult run_collab_profit(
    const ExperimentConfig& config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps);

/// Per-application completion metrics of a policy (Table III rows, Fig. 5
/// bars): mean over devices is up to the caller.
struct AppMetrics {
  std::string app;
  double exec_time_s = 0.0;
  double ips = 0.0;
  double power_w = 0.0;
};

/// Runs every application to completion under the given policy and reports
/// the Table III metrics.
std::vector<AppMetrics> evaluate_apps(const Evaluator& evaluator,
                                      const PolicyFn& policy,
                                      const std::vector<sim::AppProfile>& apps,
                                      std::uint64_t seed);

}  // namespace fedpower::core
