#include "core/controller.hpp"

namespace fedpower::core {

PowerController::PowerController(ControllerConfig config,
                                 sim::CpuDevice* processor, util::Rng rng)
    : config_(config),
      processor_(processor),
      agent_(config.agent, rng),
      featurizer_(config.featurizer),
      reward_(config.p_crit_w, config.k_offset_w,
              config.featurizer.f_max_mhz) {
  FEDPOWER_EXPECTS(processor != nullptr);
  FEDPOWER_EXPECTS(config.agent.action_count == processor->vf_table().size());
  FEDPOWER_EXPECTS(config.dvfs_interval_s > 0.0);
  if (config.drift_adaptation) drift_.emplace(config.drift);
}

const sim::TelemetrySample& PowerController::observed_state() {
  if (!have_state_) {
    // Bootstrap: observe one interval at the current operating point before
    // the first decision, so the agent has a state s_1 to act on.
    last_sample_ = processor_->run_interval(config_.dvfs_interval_s);
    have_state_ = true;
  }
  return last_sample_;
}

sim::TelemetrySample PowerController::step() {
  const std::vector<double> features = featurizer_.featurize(observed_state());
  const std::size_t action = agent_.select_action(features);
  processor_->set_level(action);
  const sim::TelemetrySample sample =
      processor_->run_interval(config_.dvfs_interval_s);
  last_reward_ = reward_(sample);
  agent_.record(features, action, last_reward_);
  if (drift_ && drift_->observe(last_reward_))
    agent_.reheat(config_.reheat_tau);
  last_sample_ = sample;
  return sample;
}

void PowerController::run_steps(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) step();
}

sim::TelemetrySample PowerController::greedy_step() {
  const std::vector<double> features = featurizer_.featurize(observed_state());
  const std::size_t action = agent_.greedy_action(features);
  processor_->set_level(action);
  const sim::TelemetrySample sample =
      processor_->run_interval(config_.dvfs_interval_s);
  last_reward_ = reward_(sample);
  last_sample_ = sample;
  return sample;
}

void PowerController::receive_global(std::span<const double> params) {
  agent_.set_parameters(params);
}

std::vector<double> PowerController::local_parameters() const {
  return agent_.parameters();
}

std::size_t PowerController::local_sample_count() const {
  return agent_.replay().size();
}

}  // namespace fedpower::core
