#include "core/controller.hpp"

#include <cmath>

namespace fedpower::core {

PowerController::PowerController(ControllerConfig config,
                                 sim::CpuDevice* processor, util::Rng rng)
    : config_(config),
      processor_(processor),
      agent_(config.agent, rng),
      featurizer_(config.featurizer),
      reward_(config.p_crit_w, config.k_offset_w,
              config.featurizer.f_max_mhz) {
  FEDPOWER_EXPECTS(processor != nullptr);
  FEDPOWER_EXPECTS(config.agent.action_count == processor->vf_table().size());
  FEDPOWER_EXPECTS(config.dvfs_interval_s > 0.0);
  FEDPOWER_EXPECTS(std::isfinite(config.reward_poison_scale));
  if (config.drift_adaptation) drift_.emplace(config.drift);
}

const sim::TelemetrySample& PowerController::observed_state() {
  if (!have_state_) {
    // Bootstrap: observe one interval at the current operating point before
    // the first decision, so the agent has a state s_1 to act on.
    last_sample_ = processor_->run_interval(config_.dvfs_interval_s);
    have_state_ = true;
  }
  return last_sample_;
}

sim::TelemetrySample PowerController::step() {
  const std::vector<double> features = featurizer_.featurize(observed_state());
  const std::size_t action = agent_.select_action(features);
  processor_->set_level(action);
  const sim::TelemetrySample sample =
      processor_->run_interval(config_.dvfs_interval_s);
  last_reward_ = reward_(sample);
  // Poisoned devices record a scaled reward but report the honest one via
  // last_reward(): the attack corrupts what the agent learns from, not the
  // experiment's measurements.
  agent_.record(features, action,
                last_reward_ * config_.reward_poison_scale);
  if (drift_ && drift_->observe(last_reward_))
    agent_.reheat(config_.reheat_tau);
  last_sample_ = sample;
  return sample;
}

void PowerController::run_steps(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) step();
}

sim::TelemetrySample PowerController::greedy_step() {
  const std::vector<double> features = featurizer_.featurize(observed_state());
  const std::size_t action = agent_.greedy_action(features);
  processor_->set_level(action);
  const sim::TelemetrySample sample =
      processor_->run_interval(config_.dvfs_interval_s);
  last_reward_ = reward_(sample);
  last_sample_ = sample;
  return sample;
}

void PowerController::receive_global(std::span<const double> params) {
  agent_.set_parameters(params);
}

std::vector<double> PowerController::local_parameters() const {
  return agent_.parameters();
}

std::size_t PowerController::local_sample_count() const {
  return agent_.replay().size();
}

namespace {

constexpr ckpt::Tag kControllerTag{'C', 'T', 'R', 'L'};

void save_sample(ckpt::Writer& out, const sim::TelemetrySample& s) {
  out.f64(s.time_s);
  out.u64(s.level);
  out.f64(s.freq_mhz);
  out.f64(s.voltage_v);
  out.f64(s.power_w);
  out.f64(s.true_power_w);
  out.f64(s.energy_j);
  out.f64(s.instructions);
  out.f64(s.cycles);
  out.f64(s.ipc);
  out.f64(s.miss_rate);
  out.f64(s.mpki);
  out.f64(s.ips);
  out.f64(s.temperature_c);
  out.str(s.app_name);
}

sim::TelemetrySample restore_sample(ckpt::Reader& in) {
  sim::TelemetrySample s;
  s.time_s = in.f64();
  s.level = in.u64();
  s.freq_mhz = in.f64();
  s.voltage_v = in.f64();
  s.power_w = in.f64();
  s.true_power_w = in.f64();
  s.energy_j = in.f64();
  s.instructions = in.f64();
  s.cycles = in.f64();
  s.ipc = in.f64();
  s.miss_rate = in.f64();
  s.mpki = in.f64();
  s.ips = in.f64();
  s.temperature_c = in.f64();
  s.app_name = in.str();
  return s;
}

}  // namespace

void PowerController::save_state(ckpt::Writer& out) const {
  write_tag(out, kControllerTag);
  agent_.save_state(out);
  out.u8(drift_.has_value() ? 1 : 0);
  if (drift_) drift_->save_state(out);
  out.u8(have_state_ ? 1 : 0);
  save_sample(out, last_sample_);
  out.f64(last_reward_);
}

void PowerController::restore_state(ckpt::Reader& in) {
  expect_tag(in, kControllerTag, "power controller");
  agent_.restore_state(in);
  const bool had_drift = in.u8() != 0;
  if (had_drift != drift_.has_value())
    throw ckpt::StateMismatchError(
        "controller snapshot drift-adaptation flag does not match config");
  if (drift_) drift_->restore_state(in);
  have_state_ = in.u8() != 0;
  last_sample_ = restore_sample(in);
  last_reward_ = in.f64();
}

}  // namespace fedpower::core
