// Programmatic summaries of experiment results — the library counterpart
// of the tables in EXPERIMENTS.md. Benches, examples and downstream tools
// aggregate RoundCurves and per-app metrics the same way instead of
// hand-rolling loops.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace fedpower::core {

/// Aggregate of one device's evaluation curve (optionally restricted to
/// the trailing `tail` rounds; tail = 0 means all rounds).
struct CurveSummary {
  double mean_reward = 0.0;
  double min_reward = 0.0;
  double mean_power_w = 0.0;
  double mean_freq_mhz = 0.0;
  double violation_rate = 0.0;
  std::size_t rounds = 0;
};

/// Summarizes one curve; tail = 0 uses every round.
[[nodiscard]] CurveSummary summarize(const RoundCurve& curve,
                                     std::size_t tail = 0);

/// Element-wise mean summary over several devices' curves (all curves must
/// have equal length; at least one device).
[[nodiscard]] CurveSummary summarize(const std::vector<RoundCurve>& devices,
                                     std::size_t tail = 0);

/// Aggregate of per-application completion metrics (Table III shape).
struct AppMetricsSummary {
  double mean_exec_time_s = 0.0;
  double mean_ips = 0.0;
  double mean_power_w = 0.0;
  double max_exec_time_s = 0.0;
};

[[nodiscard]] AppMetricsSummary summarize(
    const std::vector<AppMetrics>& metrics);

/// Per-app relative comparison of two techniques (baseline vs candidate),
/// matched by application name. Percentages follow util::percent_change
/// (negative exec-time change = candidate is faster).
struct AppComparison {
  std::string app;
  double exec_time_change_pct = 0.0;
  double ips_change_pct = 0.0;
  double power_delta_w = 0.0;
};

/// Requires both vectors to cover the same apps in the same order.
[[nodiscard]] std::vector<AppComparison> compare(
    const std::vector<AppMetrics>& baseline,
    const std::vector<AppMetrics>& candidate);

/// Headline over a comparison: mean and best-case changes (the Fig. 5
/// aggregates).
struct ComparisonSummary {
  double mean_exec_time_change_pct = 0.0;
  double best_exec_time_change_pct = 0.0;  ///< most negative (fastest win)
  double mean_ips_change_pct = 0.0;
  double best_ips_change_pct = 0.0;        ///< most positive
};

[[nodiscard]] ComparisonSummary summarize(
    const std::vector<AppComparison>& comparisons);

}  // namespace fedpower::core
