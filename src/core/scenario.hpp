// Training scenarios from the paper's evaluation.
//
// Table II assigns two training applications to each of the two devices per
// scenario; all twelve SPLASH-2 applications are used for evaluation. The
// six-apps-per-device split of §IV-B (Fig. 5) covers every evaluation
// application on exactly one device.
#pragma once

#include <string>
#include <vector>

#include "sim/application.hpp"

namespace fedpower::core {

struct Scenario {
  std::string name;
  /// Training application names, one list per device.
  std::vector<std::vector<std::string>> device_apps;
};

/// The three scenarios of Table II (two devices, two apps each).
std::vector<Scenario> table2_scenarios();

/// The §IV-B split: six applications per device, disjoint, covering all 12.
Scenario six_app_split();

/// Resolves application names to profiles from the SPLASH-2 suite;
/// aborts on unknown names.
std::vector<std::vector<sim::AppProfile>> resolve(const Scenario& scenario);

}  // namespace fedpower::core
