// Greedy policy evaluation on a fresh simulated device. Used after (or
// between) training rounds, exactly as the paper does: "During evaluation,
// the policies are not updated and the agents consistently exploit the
// action with the highest predicted reward" (§IV-A).
//
// The evaluator is policy-agnostic: any technique — the neural policy,
// Profit, CollabPolicy, a classic governor — is evaluated through the same
// PolicyFn, so the Table III / Fig. 5 comparisons measure nothing but the
// policy itself.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "sim/application.hpp"
#include "sim/processor.hpp"

namespace fedpower::core {

/// Maps the telemetry of the previous interval to the next V/f level.
using PolicyFn = std::function<std::size_t(const sim::TelemetrySample&)>;

struct EvalConfig {
  sim::ProcessorConfig processor{};
  double dvfs_interval_s = 0.5;
  /// Intervals per reward-measurement episode (fixed-length evaluation).
  std::size_t episode_intervals = 60;
  /// Wall-clock cap when running an application to completion.
  double completion_timeout_s = 900.0;
};

struct EvalResult {
  std::string app;
  double mean_reward = 0.0;
  double mean_power_w = 0.0;
  double mean_freq_mhz = 0.0;
  double stddev_freq_mhz = 0.0;
  double mean_ips = 0.0;
  double violation_rate = 0.0;   ///< fraction of intervals above P_crit
  double exec_time_s = 0.0;      ///< only set when run to completion
  double energy_j = 0.0;         ///< only set when run to completion
  double edp = 0.0;              ///< energy-delay product [J*s], completion
  std::size_t intervals = 0;
  bool completed = false;        ///< app finished within the timeout
};

class Evaluator {
 public:
  Evaluator(ControllerConfig config, EvalConfig eval);

  /// Fixed-length greedy episode of the given policy on one application.
  EvalResult run_episode(const PolicyFn& policy, const sim::AppProfile& app,
                         std::uint64_t seed) const;

  /// Runs the application to completion under the given policy and reports
  /// execution time / IPS / power (the Table III metrics).
  EvalResult run_to_completion(const PolicyFn& policy,
                               const sim::AppProfile& app,
                               std::uint64_t seed) const;

  /// Greedy episode over a *sequence* of applications, switching every
  /// segment_intervals control intervals (each switch aborts the running
  /// app). Returns one EvalResult per segment, in order — the per-segment
  /// rewards around the boundaries measure how quickly a policy adapts to
  /// workload changes at runtime.
  std::vector<EvalResult> run_switching_episode(
      const PolicyFn& policy, const std::vector<sim::AppProfile>& apps,
      std::size_t segment_intervals, std::uint64_t seed) const;

  /// Greedy policy function for a neural model given its flat parameters.
  PolicyFn neural_policy(std::span<const double> params) const;

  const ControllerConfig& controller_config() const noexcept {
    return config_;
  }
  const EvalConfig& eval_config() const noexcept { return eval_; }

 private:
  EvalResult run(const PolicyFn& policy, const sim::AppProfile& app,
                 std::uint64_t seed, bool to_completion) const;

  ControllerConfig config_;
  EvalConfig eval_;
};

}  // namespace fedpower::core
