#include "rl/replay_buffer.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace fedpower::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity, std::size_t state_dim)
    : capacity_(capacity), state_dim_(state_dim) {
  FEDPOWER_EXPECTS(capacity > 0);
  FEDPOWER_EXPECTS(state_dim > 0);
  states_.resize(capacity * state_dim);
  actions_.resize(capacity);
  rewards_.resize(capacity);
}

void ReplayBuffer::push(std::span<const double> state, std::size_t action,
                        double reward) {
  FEDPOWER_EXPECTS(state.size() == state_dim_);
  FEDPOWER_EXPECTS(action <= 255);
  float* slot = &states_[head_ * state_dim_];
  for (std::size_t i = 0; i < state_dim_; ++i)
    slot[i] = static_cast<float>(state[i]);
  actions_[head_] = static_cast<std::uint8_t>(action);
  rewards_[head_] = static_cast<float>(reward);
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

Transition ReplayBuffer::at(std::size_t index) const {
  FEDPOWER_EXPECTS(index < size_);
  // Oldest element sits at head_ when full, at 0 otherwise.
  const std::size_t base = size_ == capacity_ ? head_ : 0;
  const std::size_t slot = (base + index) % capacity_;
  Transition t;
  t.state.resize(state_dim_);
  for (std::size_t i = 0; i < state_dim_; ++i)
    t.state[i] = static_cast<double>(states_[slot * state_dim_ + i]);
  t.action = actions_[slot];
  t.reward = static_cast<double>(rewards_[slot]);
  return t;
}

std::vector<Transition> ReplayBuffer::sample(std::size_t n,
                                             util::Rng& rng) const {
  const std::size_t count = std::min(n, size_);
  std::vector<std::size_t> indices(size_);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  // Partial Fisher-Yates: the first `count` positions become a uniform
  // sample without replacement.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_index(size_ - i));
    std::swap(indices[i], indices[j]);
  }
  std::vector<Transition> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) batch.push_back(at(indices[i]));
  return batch;
}

std::size_t ReplayBuffer::storage_bytes() const noexcept {
  return capacity_ * (state_dim_ * sizeof(float) + sizeof(std::uint8_t) +
                      sizeof(float));
}

void ReplayBuffer::clear() noexcept {
  head_ = 0;
  size_ = 0;
}

namespace {
constexpr ckpt::Tag kReplayTag{'R', 'P', 'L', 'Y'};
}  // namespace

void ReplayBuffer::save_state(ckpt::Writer& out) const {
  write_tag(out, kReplayTag);
  out.u64(capacity_);
  out.u64(state_dim_);
  out.u64(head_);
  out.u64(size_);
  out.vec_f32(states_);
  out.vec_u8(actions_);
  out.vec_f32(rewards_);
}

void ReplayBuffer::restore_state(ckpt::Reader& in) {
  expect_tag(in, kReplayTag, "replay buffer");
  const std::uint64_t capacity = in.u64();
  const std::uint64_t state_dim = in.u64();
  if (capacity != capacity_ || state_dim != state_dim_)
    throw ckpt::StateMismatchError(
        "replay buffer snapshot geometry " + std::to_string(capacity) + "x" +
        std::to_string(state_dim) + " does not match configured " +
        std::to_string(capacity_) + "x" + std::to_string(state_dim_));
  head_ = in.u64();
  size_ = in.u64();
  states_ = in.vec_f32();
  actions_ = in.vec_u8();
  rewards_ = in.vec_f32();
  if (head_ >= capacity_ || size_ > capacity_ ||
      states_.size() != capacity_ * state_dim_ ||
      actions_.size() != capacity_ || rewards_.size() != capacity_)
    throw ckpt::StateMismatchError(
        "replay buffer snapshot has inconsistent cursors or array sizes");
}

}  // namespace fedpower::rl
