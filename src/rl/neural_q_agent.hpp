// Full Q-learning agent with bootstrapping and a target network (DQN-style)
// — the ablation counterpart to the paper's contextual bandit.
//
// The paper argues (§III-A, footnote 2) that the DVFS problem needs no
// credit assignment across timesteps: the effect of a frequency choice is
// fully visible in the next interval's power, so regressing the immediate
// reward suffices. This agent implements the alternative the paper rejects
// — targets r + gamma * max_a' Q_target(s', a') — so the claim can be
// tested empirically (bench_ablation_gamma). With gamma = 0 it degenerates
// to the bandit objective.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rl/neural_agent.hpp"
#include "rl/q_replay_buffer.hpp"
#include "rl/schedule.hpp"
#include "util/rng.hpp"

namespace fedpower::rl {

struct NeuralQConfig {
  /// Network/training hyperparameters (shared with the bandit agent).
  NeuralAgentConfig base{};
  /// Discount factor; 0 recovers the bandit objective.
  double gamma = 0.9;
  /// Gradient updates between target-network synchronizations.
  std::size_t target_sync_interval = 25;
};

class NeuralQAgent {
 public:
  NeuralQAgent(NeuralQConfig config, util::Rng rng);

  std::size_t select_action(std::span<const double> state);
  std::size_t greedy_action(std::span<const double> state) const;
  std::vector<double> predict(std::span<const double> state) const;

  /// Records a full transition (s, a, r, s'); advances the temperature
  /// schedule and trains every optimize_interval steps.
  void record(std::span<const double> state, std::size_t action,
              double reward, std::span<const double> next_state);

  /// One gradient update against the target network; returns batch loss.
  double train_step();

  // Federation interface (same contract as the bandit agent).
  std::vector<double> parameters() const { return online_.parameters(); }
  void set_parameters(std::span<const double> params);
  std::size_t param_count() const noexcept { return online_.param_count(); }

  /// Checkpointing; same contract as NeuralBanditAgent, plus the frozen
  /// target network's parameters.
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

  double temperature() const noexcept { return tau_.value(step_); }
  std::size_t step_count() const noexcept { return step_; }
  std::size_t update_count() const noexcept { return updates_; }
  double last_loss() const noexcept { return last_loss_; }
  const NeuralQConfig& config() const noexcept { return config_; }

 private:
  NeuralQConfig config_;  // lint: ckpt-skip(construction config, fixed for the run)
  mutable util::Rng rng_;
  nn::Mlp online_;
  nn::Mlp target_;
  nn::HuberLoss loss_;  // lint: ckpt-skip(stateless functor of the config delta)
  nn::Adam optimizer_;
  QReplayBuffer replay_;
  ExponentialDecay tau_;  // lint: ckpt-skip(pure function of step_; step_ is saved)
  std::size_t step_ = 0;
  std::size_t updates_ = 0;
  double last_loss_ = 0.0;
};

}  // namespace fedpower::rl
