// Reward signals.
//
// PaperReward implements Eq. (4): normalized frequency as the performance
// surrogate while power stays under P_crit, then a soft ramp to -1 between
// P_crit and P_crit + 2*k_offset. The soft ramp (rather than a hard penalty
// cliff) is the paper's argument for power-efficient operation near the
// threshold (§III-A).
//
// ProfitReward implements the reward of the Profit baseline [6]: IPS while
// under the constraint, -5*|P_crit - P| on violation.
#pragma once

#include "sim/telemetry.hpp"
#include "util/assert.hpp"

namespace fedpower::rl {

class RewardFunction {
 public:
  virtual ~RewardFunction() = default;

  /// Reward for the telemetry observed after executing the chosen action.
  virtual double operator()(const sim::TelemetrySample& next) const = 0;
};

class PaperReward final : public RewardFunction {
 public:
  PaperReward(double p_crit_w, double k_offset_w, double f_max_mhz);

  /// Eq. (4) evaluated on raw frequency/power values.
  [[nodiscard]] double evaluate(double freq_mhz, double power_w) const noexcept;

  double operator()(const sim::TelemetrySample& next) const override {
    return evaluate(next.freq_mhz, next.power_w);
  }

  [[nodiscard]] double p_crit() const noexcept { return p_crit_; }
  [[nodiscard]] double k_offset() const noexcept { return k_offset_; }
  [[nodiscard]] double f_max_mhz() const noexcept { return f_max_mhz_; }

 private:
  double p_crit_;
  double k_offset_;
  double f_max_mhz_;
};

class ProfitReward final : public RewardFunction {
 public:
  /// ips_scale converts instructions/second into the unit the table-based
  /// agent learns on (the paper reports IPS in units of 1e6).
  explicit ProfitReward(double p_crit_w, double ips_scale = 1e9);

  [[nodiscard]] double evaluate(double ips, double power_w) const noexcept;

  double operator()(const sim::TelemetrySample& next) const override {
    return evaluate(next.ips, next.power_w);
  }

  [[nodiscard]] double p_crit() const noexcept { return p_crit_; }

 private:
  double p_crit_;
  double ips_scale_;
};

}  // namespace fedpower::rl
