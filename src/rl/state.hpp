// State featurization: maps processor telemetry to the paper's agent state
// s = (f, P, ipc, mr, mpki), normalized to comparable magnitudes so the
// network trains well. Normalization constants are part of the shared model
// contract: every federated client must use the same featurizer or the
// averaged weights would be meaningless.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/telemetry.hpp"

namespace fedpower::rl {

struct FeaturizerConfig {
  double f_max_mhz = 1479.0;  ///< normalizes frequency to [0, 1]
  double power_scale_w = 1.0; ///< P is already order-1 in watts
  double ipc_scale = 1.5;     ///< typical IPC ceiling of the A57 model
  double mpki_scale = 50.0;   ///< typical MPKI ceiling of the workloads
};

class StateFeaturizer {
 public:
  explicit StateFeaturizer(FeaturizerConfig config = {});

  /// Number of features produced (5: f, P, ipc, mr, mpki).
  static constexpr std::size_t kStateDim = 5;

  std::vector<double> featurize(const sim::TelemetrySample& sample) const;

  const FeaturizerConfig& config() const noexcept { return config_; }

 private:
  FeaturizerConfig config_;
};

}  // namespace fedpower::rl
