#include "rl/schedule.hpp"

#include <cmath>

namespace fedpower::rl {

ExponentialDecay::ExponentialDecay(double initial, double decay, double floor)
    : initial_(initial), decay_(decay), floor_(floor) {
  FEDPOWER_EXPECTS(initial > 0.0);
  FEDPOWER_EXPECTS(decay >= 0.0);
  FEDPOWER_EXPECTS(floor >= 0.0 && floor <= initial);
}

double ExponentialDecay::value(std::size_t step) const noexcept {
  const double v = initial_ * std::exp(-decay_ * static_cast<double>(step));
  return v < floor_ ? floor_ : v;
}

std::size_t ExponentialDecay::steps_to_floor() const noexcept {
  if (decay_ == 0.0 || floor_ <= 0.0 || floor_ >= initial_) return 0;
  return static_cast<std::size_t>(std::ceil(std::log(initial_ / floor_) /
                                            decay_));
}

LinearDecay::LinearDecay(double initial, double slope, double floor)
    : initial_(initial), slope_(slope), floor_(floor) {
  FEDPOWER_EXPECTS(initial > 0.0);
  FEDPOWER_EXPECTS(slope >= 0.0);
  FEDPOWER_EXPECTS(floor >= 0.0 && floor <= initial);
}

double LinearDecay::value(std::size_t step) const noexcept {
  const double v = initial_ - slope_ * static_cast<double>(step);
  return v < floor_ ? floor_ : v;
}

}  // namespace fedpower::rl
