#include "rl/drift.hpp"

namespace fedpower::rl {

DriftMonitor::DriftMonitor(DriftConfig config) : config_(config) {
  FEDPOWER_EXPECTS(config.fast_alpha > 0.0 && config.fast_alpha <= 1.0);
  FEDPOWER_EXPECTS(config.slow_alpha > 0.0 && config.slow_alpha <= 1.0);
  FEDPOWER_EXPECTS(config.fast_alpha > config.slow_alpha);
  FEDPOWER_EXPECTS(config.drop_threshold > 0.0);
}

bool DriftMonitor::observe(double reward) {
  if (samples_ == 0) {
    fast_ = reward;
    slow_ = reward;
  } else {
    fast_ += config_.fast_alpha * (reward - fast_);
    slow_ += config_.slow_alpha * (reward - slow_);
  }
  ++samples_;
  ++since_trigger_;

  if (samples_ < config_.warmup) return false;
  if (since_trigger_ < config_.cooldown) return false;
  if (fast_ < slow_ - config_.drop_threshold) {
    ++detections_;
    since_trigger_ = 0;
    // Re-anchor the slow tracker so the same drop cannot re-trigger
    // immediately after the cooldown.
    slow_ = fast_;
    return true;
  }
  return false;
}

void DriftMonitor::reset() noexcept {
  fast_ = 0.0;
  slow_ = 0.0;
  samples_ = 0;
  since_trigger_ = 0;
  detections_ = 0;
}

namespace {
constexpr ckpt::Tag kDriftTag{'D', 'R', 'F', 'T'};
}  // namespace

void DriftMonitor::save_state(ckpt::Writer& out) const {
  write_tag(out, kDriftTag);
  out.f64(fast_);
  out.f64(slow_);
  out.u64(samples_);
  out.u64(since_trigger_);
  out.u64(detections_);
}

void DriftMonitor::restore_state(ckpt::Reader& in) {
  expect_tag(in, kDriftTag, "drift monitor");
  fast_ = in.f64();
  slow_ = in.f64();
  samples_ = in.u64();
  since_trigger_ = in.u64();
  detections_ = in.u64();
}

}  // namespace fedpower::rl
