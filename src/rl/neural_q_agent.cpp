#include "rl/neural_q_agent.hpp"

#include <algorithm>

#include "ckpt/state_io.hpp"
#include "nn/matrix.hpp"
#include "rl/policy.hpp"

namespace fedpower::rl {

NeuralQAgent::NeuralQAgent(NeuralQConfig config, util::Rng rng)
    : config_(config),
      rng_(rng),
      online_(nn::make_mlp(config.base.state_dim, config.base.hidden_sizes,
                           config.base.action_count, rng_)),
      target_(online_),
      loss_(config.base.huber_delta),
      optimizer_(config.base.learning_rate),
      replay_(config.base.replay_capacity, config.base.state_dim),
      tau_(config.base.tau_max, config.base.tau_decay, config.base.tau_min) {
  FEDPOWER_EXPECTS(config.gamma >= 0.0 && config.gamma < 1.0);
  FEDPOWER_EXPECTS(config.target_sync_interval > 0);
}

std::vector<double> NeuralQAgent::predict(
    std::span<const double> state) const {
  FEDPOWER_EXPECTS(state.size() == config_.base.state_dim);
  auto& model = const_cast<nn::Mlp&>(online_);
  return model.forward(nn::Matrix::row_vector({state.begin(), state.end()}))
      .data();
}

std::size_t NeuralQAgent::select_action(std::span<const double> state) {
  return sample_softmax(predict(state), temperature(), rng_);
}

std::size_t NeuralQAgent::greedy_action(
    std::span<const double> state) const {
  return argmax(predict(state));
}

void NeuralQAgent::record(std::span<const double> state, std::size_t action,
                          double reward,
                          std::span<const double> next_state) {
  FEDPOWER_EXPECTS(action < config_.base.action_count);
  replay_.push(state, action, reward, next_state);
  ++step_;
  if (step_ % config_.base.optimize_interval == 0) train_step();
}

double NeuralQAgent::train_step() {
  if (replay_.empty()) return 0.0;
  const std::vector<QTransition> batch =
      replay_.sample(config_.base.batch_size, rng_);

  const std::size_t dim = config_.base.state_dim;
  nn::Matrix states(batch.size(), dim);
  nn::Matrix next_states(batch.size(), dim);
  std::vector<std::size_t> actions(batch.size());
  std::vector<double> targets(batch.size());
  for (std::size_t r = 0; r < batch.size(); ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      states(r, c) = batch[r].state[c];
      next_states(r, c) = batch[r].next_state[c];
    }
    actions[r] = batch[r].action;
  }

  // Bootstrapped targets from the frozen target network.
  const nn::Matrix next_q = target_.forward(next_states);
  for (std::size_t r = 0; r < batch.size(); ++r) {
    double best = next_q(r, 0);
    for (std::size_t a = 1; a < config_.base.action_count; ++a)
      best = std::max(best, next_q(r, a));
    targets[r] = batch[r].reward + config_.gamma * best;
  }

  const nn::Matrix prediction = online_.forward(states);
  const nn::LossResult loss =
      loss_.evaluate_masked(prediction, actions, targets);
  online_.zero_gradients();
  online_.backward(loss.grad);
  std::vector<double> params = online_.parameters();
  optimizer_.step(params, online_.gradients());
  online_.set_parameters(params);

  ++updates_;
  if (updates_ % config_.target_sync_interval == 0) target_ = online_;
  last_loss_ = loss.value;
  return loss.value;
}

namespace {
constexpr ckpt::Tag kQAgentTag{'Q', 'A', 'G', 'T'};
}  // namespace

void NeuralQAgent::save_state(ckpt::Writer& out) const {
  write_tag(out, kQAgentTag);
  ckpt::save_rng(out, rng_);
  out.vec_f64(online_.parameters());
  out.vec_f64(target_.parameters());
  optimizer_.save_state(out);
  replay_.save_state(out);
  out.u64(step_);
  out.u64(updates_);
  out.f64(last_loss_);
}

void NeuralQAgent::restore_state(ckpt::Reader& in) {
  expect_tag(in, kQAgentTag, "Q agent");
  ckpt::restore_rng(in, rng_);
  const std::vector<double> online = in.vec_f64();
  const std::vector<double> target = in.vec_f64();
  if (online.size() != online_.param_count() ||
      target.size() != online_.param_count())
    throw ckpt::StateMismatchError(
        "Q agent snapshot parameter counts do not match this architecture");
  online_.set_parameters(online);
  target_.set_parameters(target);
  optimizer_.restore_state(in);
  replay_.restore_state(in);
  step_ = in.u64();
  updates_ = in.u64();
  last_loss_ = in.f64();
}

void NeuralQAgent::set_parameters(std::span<const double> params) {
  online_.set_parameters(params);
  target_.set_parameters(params);
  optimizer_.reset();
}

}  // namespace fedpower::rl
