// The neural contextual-bandit agent of the paper (Algorithm 1).
//
// A one-hidden-layer MLP mu(s, theta) estimates the expected immediate
// reward of every V/f level in the current state. Exploration samples
// actions from a softmax over the estimates with exponentially decaying
// temperature; training minimizes the Huber loss between the estimate for
// the taken action and the observed reward over replay-buffer batches, with
// Adam, every H interactions.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rl/replay_buffer.hpp"
#include "rl/schedule.hpp"
#include "util/rng.hpp"

namespace fedpower::rl {

/// How training-time actions are drawn from the reward predictions.
enum class ExplorationMode {
  kSoftmax,        ///< Boltzmann sampling with decaying temperature (paper)
  kEpsilonGreedy,  ///< epsilon-greedy with the same decay schedule (ablation)
};

/// Hyperparameters (defaults are the paper's Table I).
struct NeuralAgentConfig {
  std::size_t state_dim = 5;
  std::size_t action_count = 15;
  std::vector<std::size_t> hidden_sizes = {32};
  double learning_rate = 0.005;    // alpha
  double tau_max = 0.9;
  double tau_decay = 0.0005;
  double tau_min = 0.01;
  std::size_t replay_capacity = 4000;  // C
  std::size_t batch_size = 128;        // C_B
  std::size_t optimize_interval = 20;  // H
  double huber_delta = 1.0;
  /// FedProx-style proximal term strength; 0 disables it (plain FedAvg
  /// local training, as in the paper). Used only for the ablation bench.
  double prox_mu = 0.0;
  /// Exploration strategy. With kEpsilonGreedy the tau_* schedule fields
  /// are reinterpreted as the epsilon schedule (clamped to <= 1).
  ExplorationMode exploration = ExplorationMode::kSoftmax;
};

class NeuralBanditAgent {
 public:
  NeuralBanditAgent(NeuralAgentConfig config, util::Rng rng);

  /// Softmax-explores an action for the given state (training behaviour).
  std::size_t select_action(std::span<const double> state);

  /// Greedy action (evaluation behaviour; no exploration, no learning).
  std::size_t greedy_action(std::span<const double> state) const;

  /// Predicted expected reward for every action in the given state.
  std::vector<double> predict(std::span<const double> state) const;

  /// Records the outcome of one interaction; advances the temperature
  /// schedule and triggers a training update every optimize_interval steps.
  void record(std::span<const double> state, std::size_t action,
              double reward);

  /// Runs one gradient update on a replay batch (no-op on empty buffer).
  /// Returns the batch loss (0 if skipped).
  double train_step();

  /// Rewinds the temperature schedule so that the current temperature
  /// becomes target_tau (clamped to [tau_min, tau_max]). Used by drift
  /// adaptation to re-explore after a workload change; a no-op when the
  /// schedule has zero decay.
  void reheat(double target_tau);

  // --- federation interface -------------------------------------------
  std::vector<double> parameters() const { return model_.parameters(); }
  void set_parameters(std::span<const double> params);
  std::size_t param_count() const noexcept { return model_.param_count(); }

  // --- checkpointing ----------------------------------------------------
  /// Serializes everything that evolves during training: the RNG stream,
  /// model parameters, optimizer moments, replay contents, FedProx anchor
  /// and step counters. Config/hyperparameters are not saved; a restored
  /// agent must be constructed from the same config.
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

  // --- inspection -------------------------------------------------------
  double temperature() const noexcept;
  std::size_t step_count() const noexcept { return step_; }
  std::size_t update_count() const noexcept { return updates_; }
  double last_loss() const noexcept { return last_loss_; }
  const ReplayBuffer& replay() const noexcept { return replay_; }
  const NeuralAgentConfig& config() const noexcept { return config_; }

 private:
  NeuralAgentConfig config_;  // lint: ckpt-skip(construction config, fixed for the run)
  mutable util::Rng rng_;
  nn::Mlp model_;
  nn::HuberLoss loss_;  // lint: ckpt-skip(stateless functor of the config delta)
  nn::Adam optimizer_;
  ReplayBuffer replay_;
  ExponentialDecay tau_schedule_;  // lint: ckpt-skip(pure function of step_; step_ is saved)
  std::vector<double> global_anchor_;  // FedProx anchor (empty if unused)
  std::size_t step_ = 0;
  std::size_t updates_ = 0;
  double last_loss_ = 0.0;
};

}  // namespace fedpower::rl
