#include "rl/state.hpp"

#include "util/assert.hpp"

namespace fedpower::rl {

StateFeaturizer::StateFeaturizer(FeaturizerConfig config) : config_(config) {
  FEDPOWER_EXPECTS(config_.f_max_mhz > 0.0);
  FEDPOWER_EXPECTS(config_.power_scale_w > 0.0);
  FEDPOWER_EXPECTS(config_.ipc_scale > 0.0);
  FEDPOWER_EXPECTS(config_.mpki_scale > 0.0);
}

std::vector<double> StateFeaturizer::featurize(
    const sim::TelemetrySample& sample) const {
  return {
      sample.freq_mhz / config_.f_max_mhz,
      sample.power_w / config_.power_scale_w,
      sample.ipc / config_.ipc_scale,
      sample.miss_rate,
      sample.mpki / config_.mpki_scale,
  };
}

}  // namespace fedpower::rl
