#include "rl/policy.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace fedpower::rl {

std::vector<double> softmax(std::span<const double> values, double tau) {
  FEDPOWER_EXPECTS(!values.empty());
  FEDPOWER_EXPECTS(tau > 0.0);
  const double v_max = *std::max_element(values.begin(), values.end());
  std::vector<double> probs(values.size());
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    probs[i] = std::exp((values[i] - v_max) / tau);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return probs;
}

std::size_t sample_softmax(std::span<const double> values, double tau,
                           util::Rng& rng) {
  return rng.categorical(softmax(values, tau));
}

std::size_t argmax(std::span<const double> values) {
  FEDPOWER_EXPECTS(!values.empty());
  return static_cast<std::size_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

std::size_t epsilon_greedy(std::span<const double> values, double epsilon,
                           util::Rng& rng) {
  FEDPOWER_EXPECTS(epsilon >= 0.0 && epsilon <= 1.0);
  if (rng.bernoulli(epsilon))
    return static_cast<std::size_t>(rng.uniform_index(values.size()));
  return argmax(values);
}

double entropy(std::span<const double> probabilities) {
  double h = 0.0;
  for (const double p : probabilities) {
    FEDPOWER_EXPECTS(p >= 0.0 && p <= 1.0 + 1e-12);
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

}  // namespace fedpower::rl
