// Parameter schedules. The paper decays both the softmax temperature (its
// technique) and the exploration rate (the Profit baseline) exponentially
// over training steps.
#pragma once

#include <cstddef>

#include "util/assert.hpp"

namespace fedpower::rl {

/// value(t) = max(floor, initial * exp(-decay * t)).
class ExponentialDecay {
 public:
  ExponentialDecay(double initial, double decay, double floor);

  [[nodiscard]] double value(std::size_t step) const noexcept;

  [[nodiscard]] double initial() const noexcept { return initial_; }
  [[nodiscard]] double decay() const noexcept { return decay_; }
  [[nodiscard]] double floor() const noexcept { return floor_; }

  /// First step at which the schedule reaches its floor (useful in tests).
  [[nodiscard]] std::size_t steps_to_floor() const noexcept;

 private:
  double initial_;
  double decay_;
  double floor_;
};

/// value(t) = max(floor, initial - slope * t); provided for ablations.
class LinearDecay {
 public:
  LinearDecay(double initial, double slope, double floor);

  [[nodiscard]] double value(std::size_t step) const noexcept;

 private:
  double initial_;
  double slope_;
  double floor_;
};

}  // namespace fedpower::rl
