#include "rl/tabular.hpp"

#include <algorithm>

namespace fedpower::rl {

Discretizer::Discretizer(std::vector<DimensionSpec> dims)
    : dims_(std::move(dims)) {
  FEDPOWER_EXPECTS(!dims_.empty());
  for (const auto& d : dims_) {
    FEDPOWER_EXPECTS(d.bins >= 1);
    FEDPOWER_EXPECTS(d.lo < d.hi);
    state_count_ *= d.bins;
  }
}

std::size_t Discretizer::bin(std::size_t dim, double value) const {
  FEDPOWER_EXPECTS(dim < dims_.size());
  const DimensionSpec& d = dims_[dim];
  if (value <= d.lo) return 0;
  if (value >= d.hi) return d.bins - 1;
  const double t = (value - d.lo) / (d.hi - d.lo);
  const auto b = static_cast<std::size_t>(t * static_cast<double>(d.bins));
  return std::min(b, d.bins - 1);
}

std::size_t Discretizer::index(std::span<const double> state) const {
  FEDPOWER_EXPECTS(state.size() == dims_.size());
  std::size_t idx = 0;
  for (std::size_t dim = 0; dim < dims_.size(); ++dim)
    idx = idx * dims_[dim].bins + bin(dim, state[dim]);
  return idx;
}

QTable::QTable(std::size_t states, std::size_t actions, double initial_value)
    : states_(states),
      actions_(actions),
      q_(states * actions, initial_value),
      visits_(states * actions, 0),
      state_reward_sum_(states, 0.0),
      state_visits_(states, 0) {
  FEDPOWER_EXPECTS(states > 0 && actions > 0);
}

std::size_t QTable::cell(std::size_t s, std::size_t a) const {
  FEDPOWER_EXPECTS(s < states_ && a < actions_);
  return s * actions_ + a;
}

double QTable::value(std::size_t s, std::size_t a) const {
  return q_[cell(s, a)];
}

void QTable::set_value(std::size_t s, std::size_t a, double q) {
  q_[cell(s, a)] = q;
}

void QTable::update(std::size_t s, std::size_t a, double reward,
                    double alpha) {
  FEDPOWER_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  const std::size_t c = cell(s, a);
  q_[c] += alpha * (reward - q_[c]);
  ++visits_[c];
  state_reward_sum_[s] += reward;
  ++state_visits_[s];
}

std::size_t QTable::visits(std::size_t s, std::size_t a) const {
  return visits_[cell(s, a)];
}

std::size_t QTable::state_visits(std::size_t s) const {
  FEDPOWER_EXPECTS(s < states_);
  return state_visits_[s];
}

double QTable::state_mean_reward(std::size_t s) const {
  FEDPOWER_EXPECTS(s < states_);
  if (state_visits_[s] == 0) return 0.0;
  return state_reward_sum_[s] / static_cast<double>(state_visits_[s]);
}

std::size_t QTable::best_action(std::size_t s) const {
  FEDPOWER_EXPECTS(s < states_);
  const auto begin = q_.begin() + static_cast<std::ptrdiff_t>(s * actions_);
  return static_cast<std::size_t>(
      std::max_element(begin, begin + static_cast<std::ptrdiff_t>(actions_)) -
      begin);
}

std::vector<double> QTable::row(std::size_t s) const {
  FEDPOWER_EXPECTS(s < states_);
  return {q_.begin() + static_cast<std::ptrdiff_t>(s * actions_),
          q_.begin() + static_cast<std::ptrdiff_t>((s + 1) * actions_)};
}

std::size_t QTable::storage_bytes() const noexcept {
  return q_.size() * sizeof(double) + visits_.size() * sizeof(std::uint32_t) +
         state_reward_sum_.size() * sizeof(double) +
         state_visits_.size() * sizeof(std::uint32_t);
}

}  // namespace fedpower::rl
