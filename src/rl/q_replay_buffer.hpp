// Replay buffer for full (bootstrapped) Q-learning: stores the successor
// state alongside each transition. Used by NeuralQAgent; the paper's
// contextual-bandit agent needs no successor states (footnote 2) and uses
// the leaner ReplayBuffer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "util/rng.hpp"

namespace fedpower::rl {

struct QTransition {
  std::vector<double> state;
  std::size_t action = 0;
  double reward = 0.0;
  std::vector<double> next_state;
};

class QReplayBuffer {
 public:
  QReplayBuffer(std::size_t capacity, std::size_t state_dim);

  void push(std::span<const double> state, std::size_t action, double reward,
            std::span<const double> next_state);

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Uniform sample of min(n, size()) distinct transitions.
  std::vector<QTransition> sample(std::size_t n, util::Rng& rng) const;

  QTransition at(std::size_t index) const;

  void clear() noexcept;

  /// Checkpointing; same contract as ReplayBuffer::save_state/restore_state.
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

 private:
  std::size_t capacity_;
  std::size_t state_dim_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::vector<float> states_;
  std::vector<float> next_states_;
  std::vector<std::uint8_t> actions_;
  std::vector<float> rewards_;
};

}  // namespace fedpower::rl
