// Tabular RL building blocks for the Profit [6] and CollabPolicy [11]
// baselines: a per-dimension uniform discretizer and a Q-table with visit
// counts. The discretization is what limits the baselines' representational
// capability relative to the neural policy (§II).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fedpower::rl {

/// One state dimension: uniform bins between lo and hi, clamped outside.
struct DimensionSpec {
  double lo = 0.0;
  double hi = 1.0;
  std::size_t bins = 4;
};

class Discretizer {
 public:
  explicit Discretizer(std::vector<DimensionSpec> dims);

  std::size_t dimension_count() const noexcept { return dims_.size(); }
  std::size_t state_count() const noexcept { return state_count_; }

  /// Bin index of a single value in the given dimension.
  std::size_t bin(std::size_t dim, double value) const;

  /// Flat state index for a full feature vector.
  std::size_t index(std::span<const double> state) const;

  const std::vector<DimensionSpec>& dims() const noexcept { return dims_; }

 private:
  std::vector<DimensionSpec> dims_;
  std::size_t state_count_ = 1;
};

/// Dense Q-table with per-(state, action) visit counts and per-state reward
/// statistics (the CollabPolicy global policy needs r-bar and n per state).
class QTable {
 public:
  QTable(std::size_t states, std::size_t actions, double initial_value = 0.0);

  std::size_t states() const noexcept { return states_; }
  std::size_t actions() const noexcept { return actions_; }

  double value(std::size_t s, std::size_t a) const;
  void set_value(std::size_t s, std::size_t a, double q);

  /// Running-average update: Q += alpha * (r - Q); bumps visit counts and
  /// the per-state reward average.
  void update(std::size_t s, std::size_t a, double reward, double alpha);

  std::size_t visits(std::size_t s, std::size_t a) const;
  std::size_t state_visits(std::size_t s) const;

  /// Mean observed reward in state s (0 if unvisited).
  double state_mean_reward(std::size_t s) const;

  /// Greedy action for state s (first on ties).
  std::size_t best_action(std::size_t s) const;

  /// Q-values of all actions in state s.
  std::vector<double> row(std::size_t s) const;

  /// Approximate memory footprint in bytes (for the overhead comparison).
  std::size_t storage_bytes() const noexcept;

 private:
  std::size_t cell(std::size_t s, std::size_t a) const;

  std::size_t states_;
  std::size_t actions_;
  std::vector<double> q_;
  std::vector<std::uint32_t> visits_;
  std::vector<double> state_reward_sum_;
  std::vector<std::uint32_t> state_visits_;
};

}  // namespace fedpower::rl
