#include "rl/reward.hpp"

#include <cmath>

namespace fedpower::rl {

PaperReward::PaperReward(double p_crit_w, double k_offset_w, double f_max_mhz)
    : p_crit_(p_crit_w), k_offset_(k_offset_w), f_max_mhz_(f_max_mhz) {
  FEDPOWER_EXPECTS(p_crit_w > 0.0);
  FEDPOWER_EXPECTS(k_offset_w > 0.0);
  FEDPOWER_EXPECTS(f_max_mhz > 0.0);
}

double PaperReward::evaluate(double freq_mhz, double power_w) const noexcept {
  const double f_norm = freq_mhz / f_max_mhz_;
  const double ramp = (p_crit_ + k_offset_ - power_w) / k_offset_;
  if (power_w <= p_crit_) return f_norm;
  if (power_w <= p_crit_ + k_offset_) return f_norm * ramp;
  if (power_w <= p_crit_ + 2.0 * k_offset_) return ramp;
  return -1.0;
}

ProfitReward::ProfitReward(double p_crit_w, double ips_scale)
    : p_crit_(p_crit_w), ips_scale_(ips_scale) {
  FEDPOWER_EXPECTS(p_crit_w > 0.0);
  FEDPOWER_EXPECTS(ips_scale > 0.0);
}

double ProfitReward::evaluate(double ips, double power_w) const noexcept {
  if (power_w <= p_crit_) return ips / ips_scale_;
  return -5.0 * std::abs(p_crit_ - power_w);
}

}  // namespace fedpower::rl
