#include "rl/neural_agent.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/state_io.hpp"
#include "nn/matrix.hpp"
#include "rl/policy.hpp"

namespace fedpower::rl {

NeuralBanditAgent::NeuralBanditAgent(NeuralAgentConfig config, util::Rng rng)
    : config_(config),
      rng_(rng),
      model_(nn::make_mlp(config.state_dim, config.hidden_sizes,
                          config.action_count, rng_)),
      loss_(config.huber_delta),
      optimizer_(config.learning_rate),
      replay_(config.replay_capacity, config.state_dim),
      tau_schedule_(config.tau_max, config.tau_decay, config.tau_min) {
  FEDPOWER_EXPECTS(config.state_dim > 0);
  FEDPOWER_EXPECTS(config.action_count > 0);
  FEDPOWER_EXPECTS(config.batch_size > 0);
  FEDPOWER_EXPECTS(config.optimize_interval > 0);
  FEDPOWER_EXPECTS(config.prox_mu >= 0.0);
}

std::vector<double> NeuralBanditAgent::predict(
    std::span<const double> state) const {
  FEDPOWER_EXPECTS(state.size() == config_.state_dim);
  // forward() caches activations, which is irrelevant for inference; the
  // model is logically const here.
  auto& model = const_cast<nn::Mlp&>(model_);
  const nn::Matrix out =
      model.forward(nn::Matrix::row_vector({state.begin(), state.end()}));
  return out.data();
}

std::size_t NeuralBanditAgent::select_action(std::span<const double> state) {
  const std::vector<double> mu = predict(state);
  if (config_.exploration == ExplorationMode::kEpsilonGreedy) {
    const double epsilon = std::min(1.0, temperature());
    return epsilon_greedy(mu, epsilon, rng_);
  }
  return sample_softmax(mu, temperature(), rng_);
}

std::size_t NeuralBanditAgent::greedy_action(
    std::span<const double> state) const {
  return argmax(predict(state));
}

double NeuralBanditAgent::temperature() const noexcept {
  return tau_schedule_.value(step_);
}

void NeuralBanditAgent::record(std::span<const double> state,
                               std::size_t action, double reward) {
  FEDPOWER_EXPECTS(action < config_.action_count);
  replay_.push(state, action, reward);
  ++step_;  // Algorithm 1 line 9: the temperature decays once per step.
  if (step_ % config_.optimize_interval == 0) train_step();
}

double NeuralBanditAgent::train_step() {
  if (replay_.empty()) return 0.0;
  const std::vector<Transition> batch =
      replay_.sample(config_.batch_size, rng_);

  nn::Matrix inputs(batch.size(), config_.state_dim);
  std::vector<std::size_t> actions(batch.size());
  std::vector<double> targets(batch.size());
  for (std::size_t r = 0; r < batch.size(); ++r) {
    for (std::size_t c = 0; c < config_.state_dim; ++c)
      inputs(r, c) = batch[r].state[c];
    actions[r] = batch[r].action;
    targets[r] = batch[r].reward;
  }

  const nn::Matrix prediction = model_.forward(inputs);
  const nn::LossResult loss = loss_.evaluate_masked(prediction, actions,
                                                    targets);
  model_.zero_gradients();
  model_.backward(loss.grad);

  std::vector<double> params = model_.parameters();
  std::vector<double> grads = model_.gradients();
  if (config_.prox_mu > 0.0 && global_anchor_.size() == params.size()) {
    // FedProx: + mu/2 * ||theta - theta_global||^2 added to the loss.
    for (std::size_t i = 0; i < params.size(); ++i)
      grads[i] += config_.prox_mu * (params[i] - global_anchor_[i]);
  }
  optimizer_.step(params, grads);
  model_.set_parameters(params);

  ++updates_;
  last_loss_ = loss.value;
  return loss.value;
}

void NeuralBanditAgent::reheat(double target_tau) {
  FEDPOWER_EXPECTS(target_tau > 0.0);
  if (config_.tau_decay <= 0.0) return;
  const double target =
      std::clamp(target_tau, config_.tau_min, config_.tau_max);
  // tau(step) = tau_max * exp(-decay * step)  =>  invert for step.
  const double step =
      std::log(config_.tau_max / target) / config_.tau_decay;
  step_ = static_cast<std::size_t>(std::max(0.0, step));
}

namespace {
constexpr ckpt::Tag kAgentTag{'A', 'G', 'N', 'T'};
}  // namespace

void NeuralBanditAgent::save_state(ckpt::Writer& out) const {
  write_tag(out, kAgentTag);
  ckpt::save_rng(out, rng_);
  out.vec_f64(model_.parameters());
  optimizer_.save_state(out);
  replay_.save_state(out);
  out.vec_f64(global_anchor_);
  out.u64(step_);
  out.u64(updates_);
  out.f64(last_loss_);
}

void NeuralBanditAgent::restore_state(ckpt::Reader& in) {
  expect_tag(in, kAgentTag, "bandit agent");
  ckpt::restore_rng(in, rng_);
  const std::vector<double> params = in.vec_f64();
  if (params.size() != model_.param_count())
    throw ckpt::StateMismatchError(
        "agent snapshot holds " + std::to_string(params.size()) +
        " model parameter(s), this architecture has " +
        std::to_string(model_.param_count()));
  model_.set_parameters(params);
  optimizer_.restore_state(in);
  replay_.restore_state(in);
  global_anchor_ = in.vec_f64();
  if (!global_anchor_.empty() && global_anchor_.size() != params.size())
    throw ckpt::StateMismatchError(
        "agent snapshot FedProx anchor size does not match the model");
  step_ = in.u64();
  updates_ = in.u64();
  last_loss_ = in.f64();
}

void NeuralBanditAgent::set_parameters(std::span<const double> params) {
  model_.set_parameters(params);
  // The incoming parameters are an average of several local models; the
  // optimizer's first/second-moment estimates were accumulated for the old
  // weights and pushing the fresh weights along those stale directions
  // destabilizes late training. Standard FedAvg clients restart optimizer
  // state each round.
  optimizer_.reset();
  if (config_.prox_mu > 0.0)
    global_anchor_.assign(params.begin(), params.end());
}

}  // namespace fedpower::rl
