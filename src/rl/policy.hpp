// Action-selection rules over predicted per-action values.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace fedpower::rl {

/// Boltzmann distribution over values with temperature tau (paper Eq. 3).
/// Numerically stabilized by subtracting the maximum before exponentiation.
/// Requires tau > 0 and a non-empty value vector.
[[nodiscard]] std::vector<double> softmax(std::span<const double> values,
                                          double tau);

/// Samples an action from the softmax distribution.
[[nodiscard]] std::size_t sample_softmax(std::span<const double> values,
                                         double tau, util::Rng& rng);

/// Index of the largest value (first on ties).
[[nodiscard]] std::size_t argmax(std::span<const double> values);

/// With probability epsilon a uniform random action, otherwise the argmax.
[[nodiscard]] std::size_t epsilon_greedy(std::span<const double> values,
                                         double epsilon, util::Rng& rng);

/// Shannon entropy (nats) of a probability vector; used to test that the
/// temperature schedule moves the policy from explore to exploit.
[[nodiscard]] double entropy(std::span<const double> probabilities);

}  // namespace fedpower::rl
