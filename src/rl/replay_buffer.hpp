// Experience replay buffer (Lin, 1992). Stores the C most recent
// state-action-reward samples from the interaction with the processor
// (paper §III-A); the policy network trains on uniformly sampled batches.
//
// Samples are stored as float32 — the precision the paper's ~100 kB storage
// figure implies for a 4000-entry, 5-feature buffer (§IV-C) — and widened
// to double for training.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "util/rng.hpp"

namespace fedpower::rl {

struct Transition {
  std::vector<double> state;
  std::size_t action = 0;
  double reward = 0.0;
};

class ReplayBuffer {
 public:
  /// capacity: maximum number of retained transitions (C in the paper);
  /// state_dim: dimensionality of the state vector.
  ReplayBuffer(std::size_t capacity, std::size_t state_dim);

  /// Appends a transition, evicting the oldest once at capacity.
  void push(std::span<const double> state, std::size_t action, double reward);

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t state_dim() const noexcept { return state_dim_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Uniform sample of min(n, size()) distinct transitions.
  std::vector<Transition> sample(std::size_t n, util::Rng& rng) const;

  /// Transition by age-order index (0 = oldest retained).
  Transition at(std::size_t index) const;

  /// Storage footprint of the buffer contents at full capacity, in bytes
  /// (float32 states + uint8 action + float32 reward per entry).
  std::size_t storage_bytes() const noexcept;

  void clear() noexcept;

  /// Serializes the ring contents plus head/size cursors verbatim.
  void save_state(ckpt::Writer& out) const;

  /// Restores a snapshot taken from a buffer with the same capacity and
  /// state_dim; throws StateMismatchError when the shapes differ (the
  /// config, not the snapshot, decides buffer geometry).
  void restore_state(ckpt::Reader& in);

 private:
  std::size_t capacity_;
  std::size_t state_dim_;
  std::size_t head_ = 0;  // next slot to write
  std::size_t size_ = 0;
  std::vector<float> states_;    // capacity * state_dim, ring layout
  std::vector<std::uint8_t> actions_;
  std::vector<float> rewards_;
};

}  // namespace fedpower::rl
