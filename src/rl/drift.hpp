// Reward-drift detection for online adaptation.
//
// The paper motivates online RL with "changes in the workload, user
// preferences or ambient conditions" (§ Abstract), but its temperature
// schedule only ever decays — once the policy exploits, a workload shift
// leaves it stuck with a stale value surface until enough new samples wash
// through the buffer. DriftMonitor compares a fast and a slow exponential
// moving average of the reward; when the fast average falls clearly below
// the slow one, the environment has likely changed and the agent should
// re-explore (NeuralBanditAgent::reheat()).
#pragma once

#include <cstddef>

#include "ckpt/binary_io.hpp"
#include "util/assert.hpp"

namespace fedpower::rl {

struct DriftConfig {
  double fast_alpha = 0.2;      ///< EWMA coefficient of the fast tracker
  double slow_alpha = 0.01;     ///< EWMA coefficient of the slow tracker
  double drop_threshold = 0.3;  ///< trigger when fast < slow - threshold
  std::size_t warmup = 50;      ///< samples before detection is armed
  std::size_t cooldown = 200;   ///< samples suppressed after a trigger
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftConfig config = {});

  /// Feeds one reward observation; returns true when a drift is detected
  /// (at most once per cooldown window).
  bool observe(double reward);

  double fast() const noexcept { return fast_; }
  double slow() const noexcept { return slow_; }
  std::size_t samples() const noexcept { return samples_; }
  std::size_t detections() const noexcept { return detections_; }

  void reset() noexcept;

  /// Checkpointing: the EWMA trackers and counters (config is not saved).
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

  const DriftConfig& config() const noexcept { return config_; }

 private:
  DriftConfig config_;  // lint: ckpt-skip(construction config, fixed for the run)
  double fast_ = 0.0;
  double slow_ = 0.0;
  std::size_t samples_ = 0;
  std::size_t since_trigger_ = 0;
  std::size_t detections_ = 0;
};

}  // namespace fedpower::rl
