#include "runtime/fleet_runtime.hpp"

#include "util/assert.hpp"

namespace fedpower::runtime {

std::vector<DeviceHardware> make_hardware(
    const sim::ProcessorConfig& processor_config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    util::Rng& root) {
  FEDPOWER_EXPECTS(!device_apps.empty());
  std::vector<DeviceHardware> hardware;
  hardware.reserve(device_apps.size());
  for (const auto& apps : device_apps) {
    DeviceHardware device;
    device.processor =
        std::make_unique<sim::Processor>(processor_config, root.split());
    device.workload = std::make_unique<sim::RandomWorkload>(apps);
    device.processor->set_workload(device.workload.get());
    device.brain_rng = root.split();
    hardware.push_back(std::move(device));
  }
  return hardware;
}

FleetRuntime::FleetRuntime(
    const std::vector<core::ControllerConfig>& configs,
    const sim::ProcessorConfig& processor_config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    std::uint64_t seed, std::size_t num_threads) {
  FEDPOWER_EXPECTS(configs.size() == 1 ||
                   configs.size() == device_apps.size());
  util::Rng root(seed);
  hardware_ = make_hardware(processor_config, device_apps, root);
  controllers_.reserve(hardware_.size());
  for (std::size_t d = 0; d < hardware_.size(); ++d) {
    const core::ControllerConfig& config =
        configs.size() == 1 ? configs.front() : configs[d];
    controllers_.push_back(std::make_unique<core::PowerController>(
        config, hardware_[d].processor.get(), hardware_[d].brain_rng));
  }
  attackers_.resize(hardware_.size());
  const std::size_t threads = resolve_num_threads(num_threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

void FleetRuntime::inject_faults(std::size_t device,
                                 const DeviceFaultConfig& faults) {
  FEDPOWER_EXPECTS(device < controllers_.size());
  hardware_[device].processor->inject_faults(faults.hardware);
  if (faults.upload.attack != fed::UploadAttack::kNone) {
    attackers_[device] = std::make_unique<fed::ByzantineClient>(
        controllers_[device].get(), faults.upload);
  } else {
    attackers_[device].reset();
  }
}

std::vector<std::size_t> FleetRuntime::attacked_devices() const {
  std::vector<std::size_t> out;
  for (std::size_t d = 0; d < attackers_.size(); ++d)
    if (attackers_[d]) out.push_back(d);
  return out;
}

std::vector<fed::FederatedClient*> FleetRuntime::clients() {
  std::vector<fed::FederatedClient*> out;
  out.reserve(controllers_.size());
  for (std::size_t d = 0; d < controllers_.size(); ++d) {
    if (attackers_[d]) {
      out.push_back(attackers_[d].get());
    } else {
      out.push_back(controllers_[d].get());
    }
  }
  return out;
}

void FleetRuntime::run_local_round() {
  // Route through the client view so an attacker's per-round bookkeeping
  // (replay history, activation counter) advances exactly as it would when
  // a federation drives the round.
  for_each_device([this](std::size_t d) {
    if (attackers_[d]) {
      attackers_[d]->run_local_round();
    } else {
      controllers_[d]->run_local_round();
    }
  });
}

void FleetRuntime::for_each_device(
    const std::function<void(std::size_t)>& body) {
  if (pool_) {
    pool_->parallel_for(0, controllers_.size(), body);
    return;
  }
  for (std::size_t d = 0; d < controllers_.size(); ++d) body(d);
}

util::ParallelFor FleetRuntime::executor() {
  return pool_ ? pool_->executor() : util::ParallelFor{};
}

namespace {
constexpr ckpt::Tag kFleetTag{'F', 'L', 'T', '1'};
}  // namespace

void FleetRuntime::save_state(ckpt::Writer& out) const {
  write_tag(out, kFleetTag);
  out.u64(controllers_.size());
  for (std::size_t d = 0; d < controllers_.size(); ++d) {
    hardware_[d].processor->save_state(out);
    controllers_[d]->save_state(out);
    // Attacker state is appended only for attacked devices: clean fleets
    // keep the attack-free byte format, and both sides of a resume must
    // agree on which devices are compromised.
    if (attackers_[d]) attackers_[d]->save_state(out);
  }
}

void FleetRuntime::restore_state(ckpt::Reader& in) {
  expect_tag(in, kFleetTag, "fleet runtime");
  const std::uint64_t device_count = in.u64();
  if (device_count != controllers_.size())
    throw ckpt::StateMismatchError(
        "fleet snapshot holds " + std::to_string(device_count) +
        " device(s), this fleet has " + std::to_string(controllers_.size()));
  for (std::size_t d = 0; d < controllers_.size(); ++d) {
    hardware_[d].processor->restore_state(in);
    controllers_[d]->restore_state(in);
    if (attackers_[d]) attackers_[d]->restore_state(in);
  }
}

}  // namespace fedpower::runtime
