#include "runtime/fleet_runtime.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fedpower::runtime {

std::vector<DeviceHardware> make_hardware(
    const sim::ProcessorConfig& processor_config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    util::Rng& root) {
  FEDPOWER_EXPECTS(!device_apps.empty());
  std::vector<DeviceHardware> hardware;
  hardware.reserve(device_apps.size());
  for (const auto& apps : device_apps) {
    DeviceHardware device;
    device.processor =
        std::make_unique<sim::Processor>(processor_config, root.split());
    device.workload = std::make_unique<sim::RandomWorkload>(apps);
    device.processor->set_workload(device.workload.get());
    device.brain_rng = root.split();
    hardware.push_back(std::move(device));
  }
  return hardware;
}

void LazyDeviceClient::receive_global(std::span<const double> params) {
  resolve().receive_global(params);
}

std::vector<double> LazyDeviceClient::local_parameters() const {
  return resolve().local_parameters();
}

void LazyDeviceClient::run_local_round() { resolve().run_local_round(); }

std::size_t LazyDeviceClient::local_sample_count() const {
  return resolve().local_sample_count();
}

fed::FederatedClient& LazyDeviceClient::resolve() const {
  fleet_->hydrate(device_);
  return fleet_->client_view(device_);
}

FleetRuntime::FleetRuntime(
    const std::vector<core::ControllerConfig>& configs,
    const sim::ProcessorConfig& processor_config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    std::uint64_t seed, const FleetOptions& options)
    : configs_(configs),
      processor_config_(processor_config),
      device_apps_(device_apps),
      lazy_(options.lazy) {
  FEDPOWER_EXPECTS(!device_apps_.empty());
  FEDPOWER_EXPECTS(configs_.size() == 1 ||
                   configs_.size() == device_apps_.size());
  const std::size_t count = device_apps_.size();
  controllers_.resize(count);
  attackers_.resize(count);
  faults_.resize(count);
  util::Rng root(seed);
  if (lazy_) {
    // Deal every device its two canonical streams without constructing
    // anything: the split order here IS make_hardware's, so a device
    // hydrated later is bit-identical to one built eagerly.
    hardware_.resize(count);
    cold_.resize(count);
    for (std::size_t d = 0; d < count; ++d) {
      cold_[d].processor_rng = root.split().state();
      cold_[d].brain_rng = root.split().state();
    }
  } else {
    hardware_ = make_hardware(processor_config_, device_apps_, root);
    for (std::size_t d = 0; d < count; ++d) {
      const core::ControllerConfig& config =
          configs_.size() == 1 ? configs_.front() : configs_[d];
      controllers_[d] = std::make_unique<core::PowerController>(
          config, hardware_[d].processor.get(), hardware_[d].brain_rng);
    }
  }
  const std::size_t threads = resolve_num_threads(options.num_threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

FleetRuntime::FleetRuntime(
    const std::vector<core::ControllerConfig>& configs,
    const sim::ProcessorConfig& processor_config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    std::uint64_t seed, std::size_t num_threads)
    : FleetRuntime(configs, processor_config, device_apps, seed,
                   FleetOptions{num_threads, false}) {}

std::size_t FleetRuntime::hot_count() const noexcept {
  std::size_t count = 0;
  for (const DeviceHardware& device : hardware_)
    if (device.processor) ++count;
  return count;
}

void FleetRuntime::construct_device(
    std::size_t d, const std::array<std::uint64_t, 4>& processor_rng,
    const std::array<std::uint64_t, 4>& brain_rng) {
  util::Rng processor_stream(1);
  processor_stream.set_state(processor_rng);
  DeviceHardware& device = hardware_[d];
  device.processor = std::make_unique<sim::Processor>(processor_config_,
                                                      processor_stream);
  device.workload = std::make_unique<sim::RandomWorkload>(device_apps_[d]);
  device.processor->set_workload(device.workload.get());
  device.brain_rng.set_state(brain_rng);
  const core::ControllerConfig& config =
      configs_.size() == 1 ? configs_.front() : configs_[d];
  controllers_[d] = std::make_unique<core::PowerController>(
      config, device.processor.get(), device.brain_rng);
  // Fault configs survive the cold state (configuration, not state):
  // re-arm them exactly as inject_faults did.
  device.processor->inject_faults(faults_[d].hardware);
  if (faults_[d].upload.attack != fed::UploadAttack::kNone) {
    attackers_[d] = std::make_unique<fed::ByzantineClient>(
        controllers_[d].get(), faults_[d].upload);
  }
}

void FleetRuntime::restore_device(std::size_t d, ckpt::Reader& in) {
  hardware_[d].processor->restore_state(in);
  controllers_[d]->restore_state(in);
  if (attackers_[d]) attackers_[d]->restore_state(in);
}

void FleetRuntime::hydrate(std::size_t device) {
  FEDPOWER_EXPECTS(device < hardware_.size());
  if (hot(device)) return;
  ColdDeviceState& cold = cold_[device];
  construct_device(device, cold.processor_rng, cold.brain_rng);
  if (!cold.blob.empty()) {
    ckpt::Reader in(cold.blob);
    restore_device(device, in);
    cold.blob.clear();
    cold.blob.shrink_to_fit();
  }
}

void FleetRuntime::dehydrate(std::size_t device) {
  FEDPOWER_EXPECTS(device < hardware_.size());
  if (!lazy_ || !hot(device)) return;
  ckpt::Writer out;
  hardware_[device].processor->save_state(out);
  controllers_[device]->save_state(out);
  if (attackers_[device]) attackers_[device]->save_state(out);
  cold_[device].blob = out.take();
  // Destruction order mirrors the dependency chain: the attacker wraps the
  // controller, the controller drives the processor, the processor reads
  // the workload.
  attackers_[device].reset();
  controllers_[device].reset();
  hardware_[device].processor.reset();
  hardware_[device].workload.reset();
}

void FleetRuntime::dehydrate_inactive(std::span<const std::size_t> keep_hot) {
  for (std::size_t d = 0; d < hardware_.size(); ++d) {
    if (!hot(d)) continue;
    if (!std::binary_search(keep_hot.begin(), keep_hot.end(), d))
      dehydrate(d);
  }
}

void FleetRuntime::inject_faults(std::size_t device,
                                 const DeviceFaultConfig& faults) {
  FEDPOWER_EXPECTS(device < controllers_.size());
  hydrate(device);
  faults_[device] = faults;
  hardware_[device].processor->inject_faults(faults.hardware);
  if (faults.upload.attack != fed::UploadAttack::kNone) {
    attackers_[device] = std::make_unique<fed::ByzantineClient>(
        controllers_[device].get(), faults.upload);
  } else {
    attackers_[device].reset();
  }
}

std::vector<std::size_t> FleetRuntime::attacked_devices() const {
  std::vector<std::size_t> out;
  for (std::size_t d = 0; d < attackers_.size(); ++d)
    if (attackers_[d]) out.push_back(d);
  return out;
}

std::vector<fed::FederatedClient*> FleetRuntime::clients() {
  std::vector<fed::FederatedClient*> out;
  out.reserve(controllers_.size());
  if (lazy_) {
    // Stable proxies, one per device; the fleet stays cold until the
    // federation actually touches a device.
    if (proxies_.empty()) {
      proxies_.reserve(controllers_.size());
      for (std::size_t d = 0; d < controllers_.size(); ++d)
        proxies_.push_back(std::make_unique<LazyDeviceClient>(this, d));
    }
    for (const auto& proxy : proxies_) out.push_back(proxy.get());
    return out;
  }
  for (std::size_t d = 0; d < controllers_.size(); ++d) {
    if (attackers_[d]) {
      out.push_back(attackers_[d].get());
    } else {
      out.push_back(controllers_[d].get());
    }
  }
  return out;
}

void FleetRuntime::run_local_round() {
  // Route through the client view so an attacker's per-round bookkeeping
  // (replay history, activation counter) advances exactly as it would when
  // a federation drives the round.
  for_each_device([this](std::size_t d) { client_view(d).run_local_round(); });
}

void FleetRuntime::for_each_device(
    const std::function<void(std::size_t)>& body) {
  // Whole-fleet semantics: materialize everything up front, serially and
  // in index order, so the parallel bodies never race on hydration.
  if (lazy_)
    for (std::size_t d = 0; d < hardware_.size(); ++d) hydrate(d);
  if (pool_) {
    pool_->parallel_for(0, controllers_.size(), body);
    return;
  }
  for (std::size_t d = 0; d < controllers_.size(); ++d) body(d);
}

util::ParallelFor FleetRuntime::executor() {
  return pool_ ? pool_->executor() : util::ParallelFor{};
}

namespace {
constexpr ckpt::Tag kFleetTag{'F', 'L', 'T', '1'};
constexpr ckpt::Tag kFleetTagLazy{'F', 'L', 'T', '2'};

/// Per-device record kinds of the FLT2 layout.
constexpr std::uint8_t kColdPristine = 0;
constexpr std::uint8_t kHotInline = 1;
constexpr std::uint8_t kColdDehydrated = 2;

bool all_zero(const std::array<std::uint64_t, 4>& state) noexcept {
  return state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0;
}

std::array<std::uint64_t, 4> read_rng_state(ckpt::Reader& in) {
  std::array<std::uint64_t, 4> state{};
  for (std::uint64_t& word : state) word = in.u64();
  if (all_zero(state))
    throw ckpt::CorruptSnapshotError(
        "fleet snapshot cold record holds an all-zero RNG state");
  return state;
}
}  // namespace

// Save always writes the FLT1/FLT2 tag up front; restore peeks it as raw
// bytes to dispatch between the eager and lazy layouts, so the first typed
// call differs by design.
// lint: ckpt-sym-ok(dual-format dispatch: restore peeks the tag as raw bytes)
void FleetRuntime::save_state(ckpt::Writer& out) const {
  if (!lazy_) {
    // The historic eager layout, byte for byte.
    write_tag(out, kFleetTag);
    out.u64(controllers_.size());
    for (std::size_t d = 0; d < controllers_.size(); ++d) {
      hardware_[d].processor->save_state(out);
      controllers_[d]->save_state(out);
      // Attacker state is appended only for attacked devices: clean fleets
      // keep the attack-free byte format, and both sides of a resume must
      // agree on which devices are compromised.
      if (attackers_[d]) attackers_[d]->save_state(out);
    }
    return;
  }
  // FLT2: cold devices are saved as their compact records — snapshotting a
  // 100k-device lazy fleet must not materialize it.
  write_tag(out, kFleetTagLazy);
  out.u64(controllers_.size());
  for (std::size_t d = 0; d < controllers_.size(); ++d) {
    if (hot(d)) {
      out.u8(kHotInline);
      hardware_[d].processor->save_state(out);
      controllers_[d]->save_state(out);
      if (attackers_[d]) attackers_[d]->save_state(out);
    } else if (cold_[d].blob.empty()) {
      out.u8(kColdPristine);
      for (const std::uint64_t word : cold_[d].processor_rng) out.u64(word);
      for (const std::uint64_t word : cold_[d].brain_rng) out.u64(word);
    } else {
      out.u8(kColdDehydrated);
      out.vec_u8(cold_[d].blob);
    }
  }
}

void FleetRuntime::restore_state(ckpt::Reader& in) {
  const std::vector<std::uint8_t> raw_tag = in.raw(4);
  ckpt::Tag tag{};
  for (std::size_t i = 0; i < 4; ++i)
    tag[i] = static_cast<char>(raw_tag[i]);
  const bool lazy_format = tag == kFleetTagLazy;
  if (tag != kFleetTag && !lazy_format)
    throw ckpt::CorruptSnapshotError(
        "expected a fleet runtime section (FLT1 or FLT2), found \"" +
        std::string(tag.begin(), tag.end()) + "\"");
  const std::uint64_t device_count = in.u64();
  if (device_count != controllers_.size())
    throw ckpt::StateMismatchError(
        "fleet snapshot holds " + std::to_string(device_count) +
        " device(s), this fleet has " + std::to_string(controllers_.size()));

  if (!lazy_format) {
    for (std::size_t d = 0; d < controllers_.size(); ++d) {
      hydrate(d);  // no-op for eager fleets
      restore_device(d, in);
    }
    return;
  }

  // FLT2 restores into either kind of fleet: a lazy one keeps cold records
  // cold; an eager one materializes them on the spot (it has nowhere else
  // to put them).
  for (std::size_t d = 0; d < controllers_.size(); ++d) {
    const std::uint8_t kind = in.u8();
    switch (kind) {
      case kColdPristine: {
        const auto processor_rng = read_rng_state(in);
        const auto brain_rng = read_rng_state(in);
        if (lazy_) {
          attackers_[d].reset();
          controllers_[d].reset();
          hardware_[d].processor.reset();
          hardware_[d].workload.reset();
          cold_[d].processor_rng = processor_rng;
          cold_[d].brain_rng = brain_rng;
          cold_[d].blob.clear();
        } else {
          attackers_[d].reset();
          controllers_[d].reset();
          construct_device(d, processor_rng, brain_rng);
        }
        break;
      }
      case kHotInline: {
        hydrate(d);
        restore_device(d, in);
        break;
      }
      case kColdDehydrated: {
        std::vector<std::uint8_t> blob = in.vec_u8();
        if (lazy_) {
          attackers_[d].reset();
          controllers_[d].reset();
          hardware_[d].processor.reset();
          hardware_[d].workload.reset();
          cold_[d].blob = std::move(blob);
        } else {
          ckpt::Reader blob_in(blob);
          restore_device(d, blob_in);
        }
        break;
      }
      default:
        throw ckpt::CorruptSnapshotError(
            "fleet snapshot device record has unknown kind " +
            std::to_string(kind));
    }
  }
}

}  // namespace fedpower::runtime
