#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/assert.hpp"

namespace fedpower::runtime {

std::size_t resolve_num_threads(std::size_t requested) noexcept {
  if (requested != 0) return std::min(requested, kMaxThreads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  FEDPOWER_EXPECTS(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  FEDPOWER_EXPECTS(task != nullptr);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    FEDPOWER_EXPECTS(!stopping_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error;
    std::swap(error, first_error_);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  FEDPOWER_EXPECTS(begin <= end);
  const std::size_t n = end - begin;
  if (n == 0) return;
  // One worker (or one item): the exact serial code path, on this thread.
  if (workers_.size() <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Contiguous chunks, a few per worker so uneven items still balance.
  // Completion is tracked per call, independent of submit()/wait() users.
  struct ForState {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::exception_ptr error;
  };
  const std::size_t target_chunks = std::min(n, workers_.size() * 4);
  const std::size_t chunk_size = (n + target_chunks - 1) / target_chunks;
  const std::size_t chunk_count = (n + chunk_size - 1) / chunk_size;
  auto state = std::make_shared<ForState>();
  state->remaining = chunk_count;

  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    submit([state, lo, hi, &body] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state->mutex);
        if (state->error == nullptr) state->error = std::current_exception();
      }
      const std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->remaining == 0) state->done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&state] { return state->remaining == 0; });
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

}  // namespace fedpower::runtime
