// Fixed-size worker pool for the fleet runtime.
//
// Design goals (DESIGN.md §7):
//   * deterministic clients: the pool schedules, it never sequences — all
//     work handed to it must touch disjoint state, so any interleaving
//     yields bit-identical results;
//   * exceptions cross the pool boundary: the first exception thrown by a
//     task or a parallel_for body is rethrown to the caller at the next
//     barrier (wait() / parallel_for() return), never swallowed and never
//     terminate()d on a worker;
//   * a single-threaded pool degenerates gracefully: parallel_for with one
//     worker runs the plain serial loop inline on the calling thread, which
//     is the exact pre-parallelism code path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/executor.hpp"

namespace fedpower::runtime {

/// Upper bound on worker threads: more than this is always a config error
/// (e.g. a negative value wrapped through size_t), not a real machine.
inline constexpr std::size_t kMaxThreads = 512;

/// Resolves a num_threads config value: 0 means "one per hardware thread"
/// (at least 1), anything else is taken literally up to kMaxThreads.
std::size_t resolve_num_threads(std::size_t requested) noexcept;

class ThreadPool {
 public:
  /// Spawns num_threads workers (>= 1). With exactly one worker the pool
  /// still queues submitted tasks FIFO, but parallel_for short-circuits to
  /// an inline loop.
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins the workers. Pending exceptions
  /// that were never observed through wait() are dropped (destructors must
  /// not throw).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Tasks are started in submission order (completion
  /// order is up to the scheduler once more than one worker runs).
  void submit(std::function<void()> task);

  /// Barrier: blocks until every submitted task has finished, then rethrows
  /// the first exception any of them raised (clearing it).
  void wait();

  /// Runs body(begin) ... body(end - 1) across the workers in contiguous
  /// chunks and blocks until all calls finished; rethrows the first body
  /// exception. Independent of other submit()ted work. Bodies must touch
  /// disjoint state per index.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// This pool as the library-wide executor contract.
  util::ParallelFor executor() {
    return [this](std::size_t n, const std::function<void(std::size_t)>& f) {
      parallel_for(0, n, f);
    };
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently running tasks
  std::exception_ptr first_error_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fedpower::runtime
