// The parallel fleet runtime: owns a federation's simulated devices and
// runs their local training across a worker pool.
//
// Before this subsystem existed, every fleet consumer (core::run_federated,
// core::run_collab_profit, benchutil::make_fleet, the examples) hand-rolled
// the same device-construction loop and stepped devices one after another
// on a single thread, so an N-device federation cost N× wall-clock even on
// a many-core host. FleetRuntime centralizes both:
//
//   * construction — one canonical loop (make_hardware) with one canonical
//     RNG split order (per device: processor stream first, controller/brain
//     stream second), so every consumer builds bit-identical fleets;
//   * execution — run_local_round() trains every device's steps_per_round
//     local steps concurrently, one device = one task, with a barrier
//     before control returns to the aggregation layer.
//
// Determinism (DESIGN.md §7): each device owns its processor, workload,
// controller and split RNG; no state is shared between devices inside a
// round, so the thread schedule cannot influence results. num_threads = 1
// skips the pool entirely and runs the exact serial code path.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/controller.hpp"
#include "fed/byzantine.hpp"
#include "fed/federation.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/application.hpp"
#include "sim/processor.hpp"
#include "sim/workload.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace fedpower::runtime {

/// One device's simulated hardware plus the RNG stream reserved for
/// whatever decision-making "brain" is mounted on it (a PowerController, a
/// tabular baseline client, ...). The split order — processor first, brain
/// second — is the repo-wide canonical order; keeping it here is what lets
/// neural and baseline fleets share one construction loop without
/// perturbing each other's random streams.
struct DeviceHardware {
  std::unique_ptr<sim::Processor> processor;
  std::unique_ptr<sim::Workload> workload;
  util::Rng brain_rng{0};
};

/// Builds one processor + RandomWorkload per entry of device_apps, drawing
/// per-device streams from root in the canonical order.
std::vector<DeviceHardware> make_hardware(
    const sim::ProcessorConfig& processor_config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    util::Rng& root);

/// Everything that can go wrong with one device (DESIGN.md §10): a
/// compromised uplink (fed::ClientFaultConfig) and/or degraded hardware
/// (sim::HardwareFaultConfig). Reward poisoning lives in ControllerConfig
/// (it corrupts the learning loop itself, not the device's plumbing).
struct DeviceFaultConfig {
  fed::ClientFaultConfig upload{};
  sim::HardwareFaultConfig hardware{};

  bool any() const noexcept {
    return upload.attack != fed::UploadAttack::kNone || hardware.any();
  }
};

class FleetRuntime {
 public:
  /// Builds one neural device (processor + workload + PowerController) per
  /// entry of device_apps. configs may hold one entry (applied to every
  /// device) or one per device. num_threads: 1 = serial (no pool), 0 = one
  /// worker per hardware thread, else taken literally.
  FleetRuntime(const std::vector<core::ControllerConfig>& configs,
               const sim::ProcessorConfig& processor_config,
               const std::vector<std::vector<sim::AppProfile>>& device_apps,
               std::uint64_t seed, std::size_t num_threads = 1);

  std::size_t size() const noexcept { return controllers_.size(); }
  std::size_t num_threads() const noexcept {
    return pool_ ? pool_->size() : 1;
  }

  core::PowerController& controller(std::size_t device) {
    return *controllers_[device];
  }
  const core::PowerController& controller(std::size_t device) const {
    return *controllers_[device];
  }
  sim::Processor& processor(std::size_t device) {
    return *hardware_[device].processor;
  }

  /// Arms fault/attack models on one device: hardware faults go straight
  /// to the processor; an upload attack wraps the device's federated-client
  /// view in a fed::ByzantineClient (visible in subsequent clients()
  /// calls). Call before handing clients() to a federation.
  void inject_faults(std::size_t device, const DeviceFaultConfig& faults);

  /// The device's uplink attacker, or nullptr when the device is honest.
  const fed::ByzantineClient* attacker(std::size_t device) const {
    return attackers_[device].get();
  }

  /// Devices with an armed upload attack, in index order.
  std::vector<std::size_t> attacked_devices() const;

  /// The controllers as federated clients, index-aligned with the devices.
  /// Devices with an armed upload attack are represented by their
  /// ByzantineClient wrapper.
  std::vector<fed::FederatedClient*> clients();

  /// Runs every device's local round (steps_per_round training steps)
  /// concurrently; returns after all devices finished (barrier).
  void run_local_round();

  /// Runs body(device) for every device across the pool (barrier), serially
  /// when num_threads is 1. Bodies must touch only their device's state.
  void for_each_device(const std::function<void(std::size_t)>& body);

  /// Executor handle for the aggregation layers (FederatedAveraging /
  /// AsyncFederation). Empty when the runtime is serial, which makes those
  /// layers fall back to their plain loops.
  util::ParallelFor executor();

  /// Serializes the whole fleet — every device's processor, controller and
  /// (when armed) uplink-attacker state, in device order. Fault configs are
  /// configuration, not state: the restoring fleet must have the same
  /// faults injected. Thread count is NOT part of the state: execution is
  /// bit-identical across pool sizes (DESIGN.md §7), so a snapshot taken
  /// at 4 threads restores into a serial runtime and vice versa.
  void save_state(ckpt::Writer& out) const;

  /// Restores into a fleet built from the same configs/apps/seed shape;
  /// throws StateMismatchError when the device count differs.
  void restore_state(ckpt::Reader& in);

 private:
  std::vector<DeviceHardware> hardware_;
  std::vector<std::unique_ptr<core::PowerController>> controllers_;
  /// Per-device uplink attacker; null = honest device. Index-aligned.
  std::vector<std::unique_ptr<fed::ByzantineClient>> attackers_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when num_threads == 1
};

}  // namespace fedpower::runtime
