// The parallel fleet runtime: owns a federation's simulated devices and
// runs their local training across a worker pool.
//
// Before this subsystem existed, every fleet consumer (core::run_federated,
// core::run_collab_profit, benchutil::make_fleet, the examples) hand-rolled
// the same device-construction loop and stepped devices one after another
// on a single thread, so an N-device federation cost N× wall-clock even on
// a many-core host. FleetRuntime centralizes both:
//
//   * construction — one canonical loop (make_hardware) with one canonical
//     RNG split order (per device: processor stream first, controller/brain
//     stream second), so every consumer builds bit-identical fleets;
//   * execution — run_local_round() trains every device's steps_per_round
//     local steps concurrently, one device = one task, with a barrier
//     before control returns to the aggregation layer.
//
// Lazy fleets (FleetOptions::lazy): at 100k+ devices with C-fraction
// sampling, instantiating every processor + controller up front wastes
// gigabytes on devices that may never be drawn. A lazy runtime keeps
// sampled-out devices as compact cold records — the two RNG stream states
// the canonical construction would have dealt them (the workload position
// is implicit in the processor stream), or, once a device has trained, a
// serialized state blob — and hydrates a device into real objects the
// first time something touches it. Hydration happens on serial paths only
// (the federation's broadcast loop precedes parallel training), construction
// order stays canonical, and a hydrated device is bit-identical to one
// built eagerly, so laziness never changes results. dehydrate_inactive()
// returns devices to blob form between rounds, bounding resident memory by
// the working set instead of the fleet.
//
// Determinism (DESIGN.md §7): each device owns its processor, workload,
// controller and split RNG; no state is shared between devices inside a
// round, so the thread schedule cannot influence results. num_threads = 1
// skips the pool entirely and runs the exact serial code path.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/controller.hpp"
#include "fed/byzantine.hpp"
#include "fed/federation.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/application.hpp"
#include "sim/processor.hpp"
#include "sim/workload.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace fedpower::runtime {

/// One device's simulated hardware plus the RNG stream reserved for
/// whatever decision-making "brain" is mounted on it (a PowerController, a
/// tabular baseline client, ...). The split order — processor first, brain
/// second — is the repo-wide canonical order; keeping it here is what lets
/// neural and baseline fleets share one construction loop without
/// perturbing each other's random streams.
struct DeviceHardware {
  std::unique_ptr<sim::Processor> processor;
  std::unique_ptr<sim::Workload> workload;
  util::Rng brain_rng{0};
};

/// Builds one processor + RandomWorkload per entry of device_apps, drawing
/// per-device streams from root in the canonical order.
std::vector<DeviceHardware> make_hardware(
    const sim::ProcessorConfig& processor_config,
    const std::vector<std::vector<sim::AppProfile>>& device_apps,
    util::Rng& root);

/// Everything that can go wrong with one device (DESIGN.md §10): a
/// compromised uplink (fed::ClientFaultConfig) and/or degraded hardware
/// (sim::HardwareFaultConfig). Reward poisoning lives in ControllerConfig
/// (it corrupts the learning loop itself, not the device's plumbing).
struct DeviceFaultConfig {
  fed::ClientFaultConfig upload{};
  sim::HardwareFaultConfig hardware{};

  bool any() const noexcept {
    return upload.attack != fed::UploadAttack::kNone || hardware.any();
  }
};

/// Execution options for a FleetRuntime. num_threads: 1 = serial (no
/// pool), 0 = one worker per hardware thread, else taken literally. lazy:
/// defer device construction until first touch (see the file header).
struct FleetOptions {
  std::size_t num_threads = 1;
  bool lazy = false;
};

class FleetRuntime;

/// Stable fed::FederatedClient facade over one (possibly cold) device of a
/// lazy fleet. The federation holds these pointers for the whole run; the
/// proxy hydrates its device on first use and then forwards to the real
/// client view (the controller, or its ByzantineClient wrapper when an
/// upload attack is armed). Hydration is not thread-safe — the federation's
/// serial broadcast loop touches every participant before parallel
/// training starts, which is what makes the lazy path schedule-safe.
class LazyDeviceClient final : public fed::FederatedClient {
 public:
  LazyDeviceClient(FleetRuntime* fleet, std::size_t device) noexcept
      : fleet_(fleet), device_(device) {}

  void receive_global(std::span<const double> params) override;
  std::vector<double> local_parameters() const override;
  void run_local_round() override;
  std::size_t local_sample_count() const override;

  std::size_t device() const noexcept { return device_; }

 private:
  fed::FederatedClient& resolve() const;

  FleetRuntime* fleet_;
  std::size_t device_;
};

class FleetRuntime {
 public:
  /// Builds one neural device (processor + workload + PowerController) per
  /// entry of device_apps. configs may hold one entry (applied to every
  /// device) or one per device. In lazy mode construction only records
  /// each device's RNG stream states; devices materialize on first touch.
  FleetRuntime(const std::vector<core::ControllerConfig>& configs,
               const sim::ProcessorConfig& processor_config,
               const std::vector<std::vector<sim::AppProfile>>& device_apps,
               std::uint64_t seed, const FleetOptions& options);

  /// Legacy signature: FleetOptions{num_threads} with eager construction.
  FleetRuntime(const std::vector<core::ControllerConfig>& configs,
               const sim::ProcessorConfig& processor_config,
               const std::vector<std::vector<sim::AppProfile>>& device_apps,
               std::uint64_t seed, std::size_t num_threads = 1);

  // Lazy-fleet client proxies hold a pointer back to the runtime, so the
  // runtime must stay put (benchutil::make_fleet still returns by value:
  // a prvalue return is guaranteed-elided, never moved).
  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  std::size_t size() const noexcept { return controllers_.size(); }
  std::size_t num_threads() const noexcept {
    return pool_ ? pool_->size() : 1;
  }

  bool lazy() const noexcept { return lazy_; }
  /// True when the device's simulator/controller objects are materialized
  /// (always, for an eager fleet).
  bool hot(std::size_t device) const {
    return hardware_[device].processor != nullptr;
  }
  /// Number of materialized devices.
  std::size_t hot_count() const noexcept;

  /// Materializes a cold device: pristine devices are constructed from
  /// their recorded RNG stream states (bit-identical to eager
  /// construction); previously dehydrated devices are reconstructed and
  /// their state blob restored. No-op when already hot. Not thread-safe.
  void hydrate(std::size_t device);

  /// Serializes a hot device into its compact cold record and destroys
  /// the live objects; a later hydrate() restores it bit-identically.
  /// No-op when the device is already cold. Lazy fleets only.
  void dehydrate(std::size_t device);

  /// Dehydrates every hot device whose index is not in keep_hot (which
  /// must be sorted ascending). The between-rounds memory bound: pass the
  /// round's participants to keep resident memory at the working set.
  void dehydrate_inactive(std::span<const std::size_t> keep_hot);

  /// Hydrates on demand in a lazy fleet (serial paths only).
  core::PowerController& controller(std::size_t device) {
    hydrate(device);
    return *controllers_[device];
  }
  /// Requires the device to be hot (guaranteed for eager fleets).
  const core::PowerController& controller(std::size_t device) const {
    FEDPOWER_EXPECTS(hot(device));
    return *controllers_[device];
  }
  sim::Processor& processor(std::size_t device) {
    hydrate(device);
    return *hardware_[device].processor;
  }

  /// Arms fault/attack models on one device: hardware faults go straight
  /// to the processor; an upload attack wraps the device's federated-client
  /// view in a fed::ByzantineClient (visible in subsequent clients()
  /// calls). Call before handing clients() to a federation. Hydrates the
  /// device; the fault config is re-applied across dehydrate/hydrate
  /// cycles (configuration, not state).
  void inject_faults(std::size_t device, const DeviceFaultConfig& faults);

  /// The device's uplink attacker, or nullptr when the device is honest
  /// (or cold — attackers materialize with their device).
  const fed::ByzantineClient* attacker(std::size_t device) const {
    return attackers_[device].get();
  }

  /// Devices with an armed upload attack, in index order.
  std::vector<std::size_t> attacked_devices() const;

  /// The controllers as federated clients, index-aligned with the devices.
  /// Devices with an armed upload attack are represented by their
  /// ByzantineClient wrapper. A lazy fleet returns stable LazyDeviceClient
  /// proxies instead, so handing a 100k-device fleet to a federation does
  /// not materialize it.
  std::vector<fed::FederatedClient*> clients();

  /// Runs every device's local round (steps_per_round training steps)
  /// concurrently; returns after all devices finished (barrier). Hydrates
  /// the whole fleet first: this is a whole-fleet operation by contract.
  void run_local_round();

  /// Runs body(device) for every device across the pool (barrier), serially
  /// when num_threads is 1. Bodies must touch only their device's state.
  /// Hydrates the whole fleet first (serially, in index order).
  void for_each_device(const std::function<void(std::size_t)>& body);

  /// Executor handle for the aggregation layers (FederatedAveraging /
  /// AsyncFederation). Empty when the runtime is serial, which makes those
  /// layers fall back to their plain loops.
  util::ParallelFor executor();

  /// Serializes the whole fleet in device order. Eager fleets write the
  /// historic FLT1 layout (every device's processor, controller and — when
  /// armed — uplink-attacker state), byte-identical to previous releases.
  /// Lazy fleets write FLT2: one record per device tagged cold-pristine
  /// (the two RNG stream states), hot (FLT1-style inline state) or
  /// dehydrated (the state blob) — cold devices are saved without being
  /// materialized. Fault configs are configuration, not state: the
  /// restoring fleet must have the same faults injected. Thread count is
  /// NOT part of the state: execution is bit-identical across pool sizes
  /// (DESIGN.md §7), so a snapshot taken at 4 threads restores into a
  /// serial runtime and vice versa; likewise either format restores into
  /// either an eager or a lazy fleet of the same shape.
  void save_state(ckpt::Writer& out) const;

  /// Restores a FLT1 or FLT2 snapshot into a fleet built from the same
  /// configs/apps/seed shape; throws StateMismatchError when the device
  /// count differs. Restoring FLT2 cold records into a lazy fleet keeps
  /// them cold; into an eager fleet they are materialized on the spot.
  void restore_state(ckpt::Reader& in);

 private:
  friend class LazyDeviceClient;

  /// Compact stand-in for a not-materialized device. A pristine device
  /// (never hydrated) is fully determined by the two RNG stream states the
  /// canonical construction order dealt it; a dehydrated device carries
  /// its serialized state instead (blob non-empty).
  struct ColdDeviceState {
    std::array<std::uint64_t, 4> processor_rng{};
    std::array<std::uint64_t, 4> brain_rng{};
    std::vector<std::uint8_t> blob;
  };

  /// Builds device d's objects from the given RNG stream states and
  /// re-applies its recorded fault config.
  void construct_device(std::size_t d,
                        const std::array<std::uint64_t, 4>& processor_rng,
                        const std::array<std::uint64_t, 4>& brain_rng);
  /// Restores device d's components from an FLT1-style inline record.
  void restore_device(std::size_t d, ckpt::Reader& in);
  /// The device's federated-client view (attacker wrapper when armed).
  fed::FederatedClient& client_view(std::size_t d) {
    return attackers_[d] ? static_cast<fed::FederatedClient&>(*attackers_[d])
                         : *controllers_[d];
  }

  /// Construction recipe, retained to materialize cold devices.
  /// lint: ckpt-skip(construction recipe, fixed for the run)
  std::vector<core::ControllerConfig> configs_;
  sim::ProcessorConfig processor_config_;  // lint: ckpt-skip(construction recipe, fixed for the run)
  // lint: ckpt-skip(construction recipe, fixed for the run)
  std::vector<std::vector<sim::AppProfile>> device_apps_;
  bool lazy_ = false;

  std::vector<DeviceHardware> hardware_;  ///< null processor = cold device
  std::vector<std::unique_ptr<core::PowerController>> controllers_;
  /// Per-device uplink attacker; null = honest (or cold) device.
  std::vector<std::unique_ptr<fed::ByzantineClient>> attackers_;
  std::vector<ColdDeviceState> cold_;  ///< lazy fleets only
  /// Injected fault configs. lint: ckpt-skip(construction recipe, fixed for the run)
  std::vector<DeviceFaultConfig> faults_;
  /// Lazy only. lint: ckpt-skip(stateless forwarding proxies; rebuilt on hydration)
  std::vector<std::unique_ptr<LazyDeviceClient>> proxies_;
  /// Null when num_threads == 1. lint: ckpt-skip(thread pool handle; rounds are width-invariant)
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace fedpower::runtime
