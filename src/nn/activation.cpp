#include "nn/activation.hpp"

#include <cmath>

namespace fedpower::nn {

Matrix Relu::forward(const Matrix& input) {
  input_ = input;
  Matrix out = input;
  for (double& x : out.data())
    if (x < 0.0) x = 0.0;
  return out;
}

Matrix Relu::backward(const Matrix& grad_output) {
  FEDPOWER_EXPECTS(grad_output.same_shape(input_));
  Matrix grad_in = grad_output;
  for (std::size_t i = 0; i < grad_in.data().size(); ++i)
    if (input_.data()[i] <= 0.0) grad_in.data()[i] = 0.0;
  return grad_in;
}

std::unique_ptr<Layer> Relu::clone() const {
  return std::make_unique<Relu>(*this);
}

Matrix Tanh::forward(const Matrix& input) {
  Matrix out = input;
  for (double& x : out.data()) x = std::tanh(x);
  output_ = out;
  return out;
}

Matrix Tanh::backward(const Matrix& grad_output) {
  FEDPOWER_EXPECTS(grad_output.same_shape(output_));
  Matrix grad_in = grad_output;
  for (std::size_t i = 0; i < grad_in.data().size(); ++i) {
    const double y = output_.data()[i];
    grad_in.data()[i] *= 1.0 - y * y;
  }
  return grad_in;
}

std::unique_ptr<Layer> Tanh::clone() const {
  return std::make_unique<Tanh>(*this);
}

}  // namespace fedpower::nn
