#include "nn/matrix.hpp"

namespace fedpower::nn {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    FEDPOWER_EXPECTS(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::row_vector(const std::vector<double>& values) {
  Matrix m(1, values.size());
  m.data_ = values;
  return m;
}

Matrix Matrix::matmul(const Matrix& other) const {
  FEDPOWER_EXPECTS(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[r * cols_ + k];
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[r * other.cols_];
      for (std::size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::transpose_matmul(const Matrix& other) const {
  FEDPOWER_EXPECTS(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    const double* arow = &data_[k * cols_];
    const double* brow = &other.data_[k * other.cols_];
    for (std::size_t r = 0; r < cols_; ++r) {
      const double a = arow[r];
      if (a == 0.0) continue;
      double* orow = &out.data_[r * other.cols_];
      for (std::size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::matmul_transpose(const Matrix& other) const {
  FEDPOWER_EXPECTS(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* arow = &data_[r * cols_];
    for (std::size_t c = 0; c < other.rows_; ++c) {
      const double* brow = &other.data_[c * other.cols_];
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) acc += arow[k] * brow[k];
      out.data_[r * other.rows_ + c] = acc;
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  FEDPOWER_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  FEDPOWER_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  FEDPOWER_EXPECTS(same_shape(other));
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] *= other.data_[i];
  return out;
}

void Matrix::add_row_broadcast(const Matrix& row) {
  FEDPOWER_EXPECTS(row.rows() == 1 && row.cols() == cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      data_[r * cols_ + c] += row.data_[c];
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      out.data_[c] += data_[r * cols_ + c];
  return out;
}

}  // namespace fedpower::nn
