#include "nn/loss.hpp"

#include <cmath>

namespace fedpower::nn {

LossResult MseLoss::evaluate(const Matrix& prediction,
                             const Matrix& target) const {
  FEDPOWER_EXPECTS(prediction.same_shape(target));
  FEDPOWER_EXPECTS(!prediction.empty());
  LossResult result;
  result.grad = Matrix(prediction.rows(), prediction.cols());
  const double n = static_cast<double>(prediction.size());
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    const double e = prediction.data()[i] - target.data()[i];
    result.value += 0.5 * e * e;
    result.grad.data()[i] = e / n;
  }
  result.value /= n;
  return result;
}

LossResult MseLoss::evaluate_masked(const Matrix& prediction,
                                    const std::vector<std::size_t>& actions,
                                    const std::vector<double>& targets) const {
  FEDPOWER_EXPECTS(actions.size() == prediction.rows());
  FEDPOWER_EXPECTS(targets.size() == prediction.rows());
  FEDPOWER_EXPECTS(!actions.empty());
  LossResult result;
  result.grad = Matrix(prediction.rows(), prediction.cols());
  const double n = static_cast<double>(prediction.rows());
  for (std::size_t r = 0; r < prediction.rows(); ++r) {
    const std::size_t a = actions[r];
    FEDPOWER_EXPECTS(a < prediction.cols());
    const double e = prediction(r, a) - targets[r];
    result.value += 0.5 * e * e;
    result.grad(r, a) = e / n;
  }
  result.value /= n;
  return result;
}

HuberLoss::HuberLoss(double delta) : delta_(delta) {
  FEDPOWER_EXPECTS(delta > 0.0);
}

double HuberLoss::pointwise(double error) const noexcept {
  const double abs_e = std::abs(error);
  if (abs_e <= delta_) return 0.5 * error * error;
  return delta_ * (abs_e - 0.5 * delta_);
}

double HuberLoss::derivative(double error) const noexcept {
  if (std::abs(error) <= delta_) return error;
  return error > 0.0 ? delta_ : -delta_;
}

LossResult HuberLoss::evaluate(const Matrix& prediction,
                               const Matrix& target) const {
  FEDPOWER_EXPECTS(prediction.same_shape(target));
  FEDPOWER_EXPECTS(!prediction.empty());
  LossResult result;
  result.grad = Matrix(prediction.rows(), prediction.cols());
  const double n = static_cast<double>(prediction.size());
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    const double e = prediction.data()[i] - target.data()[i];
    result.value += pointwise(e);
    result.grad.data()[i] = derivative(e) / n;
  }
  result.value /= n;
  return result;
}

LossResult HuberLoss::evaluate_masked(const Matrix& prediction,
                                      const std::vector<std::size_t>& actions,
                                      const std::vector<double>& targets) const {
  FEDPOWER_EXPECTS(actions.size() == prediction.rows());
  FEDPOWER_EXPECTS(targets.size() == prediction.rows());
  FEDPOWER_EXPECTS(!actions.empty());
  LossResult result;
  result.grad = Matrix(prediction.rows(), prediction.cols());
  const double n = static_cast<double>(prediction.rows());
  for (std::size_t r = 0; r < prediction.rows(); ++r) {
    const std::size_t a = actions[r];
    FEDPOWER_EXPECTS(a < prediction.cols());
    const double e = prediction(r, a) - targets[r];
    result.value += pointwise(e);
    result.grad(r, a) = derivative(e) / n;
  }
  result.value /= n;
  return result;
}

}  // namespace fedpower::nn
