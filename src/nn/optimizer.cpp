#include "nn/optimizer.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fedpower::nn {

Sgd::Sgd(double learning_rate, double momentum)
    : lr_(learning_rate), momentum_(momentum) {
  FEDPOWER_EXPECTS(learning_rate > 0.0);
  FEDPOWER_EXPECTS(momentum >= 0.0 && momentum < 1.0);
}

void Sgd::step(std::vector<double>& params, const std::vector<double>& grads) {
  FEDPOWER_EXPECTS(params.size() == grads.size());
  if (momentum_ == 0.0) {
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i] -= lr_ * grads[i];
    return;
  }
  if (velocity_.size() != params.size()) velocity_.assign(params.size(), 0.0);
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] = momentum_ * velocity_[i] + grads[i];
    params[i] -= lr_ * velocity_[i];
  }
}

void Sgd::reset() noexcept { velocity_.clear(); }

namespace {
constexpr ckpt::Tag kSgdTag{'S', 'G', 'D', '0'};
constexpr ckpt::Tag kAdamTag{'A', 'D', 'A', 'M'};
}  // namespace

void Sgd::save_state(ckpt::Writer& out) const {
  write_tag(out, kSgdTag);
  out.vec_f64(velocity_);
}

void Sgd::restore_state(ckpt::Reader& in) {
  expect_tag(in, kSgdTag, "Sgd optimizer");
  velocity_ = in.vec_f64();
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  FEDPOWER_EXPECTS(learning_rate > 0.0);
  FEDPOWER_EXPECTS(beta1 >= 0.0 && beta1 < 1.0);
  FEDPOWER_EXPECTS(beta2 >= 0.0 && beta2 < 1.0);
  FEDPOWER_EXPECTS(epsilon > 0.0);
}

void Adam::step(std::vector<double>& params, const std::vector<double>& grads) {
  FEDPOWER_EXPECTS(params.size() == grads.size());
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0);
    v_.assign(params.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

void Adam::reset() noexcept {
  m_.clear();
  v_.clear();
  t_ = 0;
}

void Adam::save_state(ckpt::Writer& out) const {
  write_tag(out, kAdamTag);
  out.u64(static_cast<std::uint64_t>(t_));
  out.vec_f64(m_);
  out.vec_f64(v_);
}

void Adam::restore_state(ckpt::Reader& in) {
  expect_tag(in, kAdamTag, "Adam optimizer");
  const auto t = static_cast<long>(in.u64());
  auto m = in.vec_f64();
  auto v = in.vec_f64();
  if (m.size() != v.size())
    throw ckpt::StateMismatchError(
        "Adam snapshot has mismatched moment vectors (" +
        std::to_string(m.size()) + " vs " + std::to_string(v.size()) + ")");
  // An optimizer that already stepped knows its parameter dimension; a
  // snapshot of a different dimension belongs to a different model.
  if (!m_.empty() && !m.empty() && m.size() != m_.size())
    throw ckpt::StateMismatchError(
        "Adam snapshot is for " + std::to_string(m.size()) +
        " parameter(s), this optimizer tracks " + std::to_string(m_.size()));
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
}

}  // namespace fedpower::nn
