#include "nn/optimizer.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fedpower::nn {

Sgd::Sgd(double learning_rate, double momentum)
    : lr_(learning_rate), momentum_(momentum) {
  FEDPOWER_EXPECTS(learning_rate > 0.0);
  FEDPOWER_EXPECTS(momentum >= 0.0 && momentum < 1.0);
}

void Sgd::step(std::vector<double>& params, const std::vector<double>& grads) {
  FEDPOWER_EXPECTS(params.size() == grads.size());
  if (momentum_ == 0.0) {
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i] -= lr_ * grads[i];
    return;
  }
  if (velocity_.size() != params.size()) velocity_.assign(params.size(), 0.0);
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] = momentum_ * velocity_[i] + grads[i];
    params[i] -= lr_ * velocity_[i];
  }
}

void Sgd::reset() noexcept { velocity_.clear(); }

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  FEDPOWER_EXPECTS(learning_rate > 0.0);
  FEDPOWER_EXPECTS(beta1 >= 0.0 && beta1 < 1.0);
  FEDPOWER_EXPECTS(beta2 >= 0.0 && beta2 < 1.0);
  FEDPOWER_EXPECTS(epsilon > 0.0);
}

void Adam::step(std::vector<double>& params, const std::vector<double>& grads) {
  FEDPOWER_EXPECTS(params.size() == grads.size());
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0);
    v_.assign(params.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

void Adam::reset() noexcept {
  m_.clear();
  v_.clear();
  t_ = 0;
}

}  // namespace fedpower::nn
