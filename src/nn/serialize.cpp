#include "nn/serialize.hpp"

#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/assert.hpp"

namespace fedpower::nn {

namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'P', 'N', 'N'};

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t offset) {
  return static_cast<std::uint16_t>(in[offset] |
                                    (static_cast<unsigned>(in[offset + 1]) << 8));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | in[offset + static_cast<std::size_t>(i)];
  return v;
}

}  // namespace

std::size_t payload_size(std::size_t param_count) noexcept {
  return kPayloadHeaderBytes + param_count * sizeof(float);
}

std::vector<std::uint8_t> encode_parameters(std::span<const double> params) {
  FEDPOWER_EXPECTS(params.size() <= std::numeric_limits<std::uint32_t>::max());
  std::vector<std::uint8_t> out;
  out.reserve(payload_size(params.size()));
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  put_u16(out, kPayloadVersion);
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const double p : params) {
    const auto bits = std::bit_cast<std::uint32_t>(static_cast<float>(p));
    put_u32(out, bits);
  }
  return out;
}

std::vector<double> decode_parameters(std::span<const std::uint8_t> payload) {
  if (payload.size() < kPayloadHeaderBytes)
    throw std::invalid_argument("model payload truncated (header)");
  if (std::memcmp(payload.data(), kMagic, sizeof kMagic) != 0)
    throw std::invalid_argument("model payload has bad magic");
  if (get_u16(payload, 4) != kPayloadVersion)
    throw std::invalid_argument("model payload has unsupported version");
  const std::uint32_t count = get_u32(payload, 8);
  // Distinct messages for the two corruption directions: a short payload
  // means the transfer/file was cut off, extra bytes mean trailing garbage
  // (e.g. a double write or a torn copy).
  if (payload.size() < payload_size(count))
    throw std::invalid_argument(
        "model payload truncated: header claims " + std::to_string(count) +
        " parameter(s) (" + std::to_string(payload_size(count)) +
        " bytes), got " + std::to_string(payload.size()));
  if (payload.size() > payload_size(count))
    throw std::invalid_argument(
        "model payload has trailing garbage: " +
        std::to_string(payload.size() - payload_size(count)) +
        " byte(s) past the " + std::to_string(count) + "-parameter payload");
  std::vector<double> params(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t bits =
        get_u32(payload, kPayloadHeaderBytes + i * sizeof(float));
    params[i] = static_cast<double>(std::bit_cast<float>(bits));
  }
  return params;
}

}  // namespace fedpower::nn
