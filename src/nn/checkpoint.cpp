#include "nn/checkpoint.hpp"

#include <fstream>
#include <stdexcept>

#include "nn/serialize.hpp"

namespace fedpower::nn {

void save_parameters(const std::string& path,
                     std::span<const double> params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);
  const std::vector<std::uint8_t> payload = encode_parameters(params);
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  if (!out) throw std::runtime_error("checkpoint: write failed for " + path);
}

std::vector<double> load_parameters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  std::vector<std::uint8_t> payload(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return decode_parameters(payload);
}

}  // namespace fedpower::nn
