#include "nn/checkpoint.hpp"

#include <stdexcept>

#include "ckpt/snapshot.hpp"
#include "nn/serialize.hpp"

namespace fedpower::nn {

void save_parameters(const std::string& path,
                     std::span<const double> params) {
  // Atomic write through the snapshot subsystem's temp-file + fsync +
  // rename path: a crash mid-save leaves the previous checkpoint intact,
  // never a torn file. The bytes on disk are still the plain FPNN payload
  // (wrapped in the FPCK container), so decode errors stay precise.
  ckpt::write_snapshot_file(path, encode_parameters(params));
}

std::vector<double> load_parameters(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = ckpt::read_file_bytes(path);
  } catch (const ckpt::SnapshotNotFoundError& e) {
    throw std::runtime_error(std::string("checkpoint: ") + e.what());
  }
  // Accept both the FPCK-wrapped form written by save_parameters (with
  // checksum validation) and a bare FPNN payload (the federated wire
  // format, e.g. a captured upload).
  if (bytes.size() >= 4 && bytes[0] == 'F' && bytes[1] == 'P' &&
      bytes[2] == 'C' && bytes[3] == 'K')
    return decode_parameters(ckpt::decode_snapshot(bytes));
  return decode_parameters(bytes);
}

}  // namespace fedpower::nn
