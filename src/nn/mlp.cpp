#include "nn/mlp.hpp"

#include "nn/activation.hpp"

namespace fedpower::nn {

Mlp::Mlp(std::vector<std::unique_ptr<Layer>> layers)
    : layers_(std::move(layers)) {}

Mlp::Mlp(const Mlp& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this == &other) return *this;
  Mlp copy(other);
  layers_ = std::move(copy.layers_);
  return *this;
}

Matrix Mlp::forward(const Matrix& input) {
  Matrix activation = input;
  for (const auto& layer : layers_) activation = layer->forward(activation);
  return activation;
}

Matrix Mlp::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    grad = (*it)->backward(grad);
  return grad;
}

std::size_t Mlp::param_count() const noexcept {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->param_count();
  return total;
}

std::vector<double> Mlp::parameters() const {
  std::vector<double> flat(param_count());
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    const std::size_t n = layer->param_count();
    layer->copy_params_to({flat.data() + offset, n});
    offset += n;
  }
  return flat;
}

void Mlp::set_parameters(std::span<const double> params) {
  FEDPOWER_EXPECTS(params.size() == param_count());
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    const std::size_t n = layer->param_count();
    layer->set_params_from(params.subspan(offset, n));
    offset += n;
  }
}

std::vector<double> Mlp::gradients() const {
  std::vector<double> flat(param_count());
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    const std::size_t n = layer->param_count();
    layer->copy_grads_to({flat.data() + offset, n});
    offset += n;
  }
  return flat;
}

void Mlp::zero_gradients() noexcept {
  for (const auto& layer : layers_) layer->zero_grads();
}

Mlp make_mlp(std::size_t input, const std::vector<std::size_t>& hidden_sizes,
             std::size_t output, util::Rng& rng, Init init) {
  FEDPOWER_EXPECTS(input > 0 && output > 0);
  std::vector<std::unique_ptr<Layer>> layers;
  std::size_t in = input;
  for (const std::size_t h : hidden_sizes) {
    FEDPOWER_EXPECTS(h > 0);
    layers.push_back(std::make_unique<Dense>(in, h, init, rng));
    layers.push_back(std::make_unique<Relu>());
    in = h;
  }
  layers.push_back(std::make_unique<Dense>(in, output, init, rng));
  return Mlp{std::move(layers)};
}

}  // namespace fedpower::nn
