// Sequential multi-layer perceptron with flat parameter access. The flat
// view is what makes federated averaging trivial: the server averages plain
// vectors without knowing the network topology.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nn/dense.hpp"
#include "nn/layer.hpp"

namespace fedpower::nn {

class Mlp {
 public:
  Mlp() = default;
  explicit Mlp(std::vector<std::unique_ptr<Layer>> layers);

  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&&) noexcept = default;
  Mlp& operator=(Mlp&&) noexcept = default;

  /// Runs the full stack; caches per-layer activations for backward().
  Matrix forward(const Matrix& input);

  /// Back-propagates dLoss/dOutput, accumulating gradients in every layer,
  /// and returns dLoss/dInput.
  Matrix backward(const Matrix& grad_output);

  std::size_t layer_count() const noexcept { return layers_.size(); }
  std::size_t param_count() const noexcept;

  /// Gathers all parameters into one flat vector (layer order, W then b).
  std::vector<double> parameters() const;

  /// Scatters a flat vector back into the layers.
  void set_parameters(std::span<const double> params);

  /// Gathers accumulated gradients (same layout as parameters()).
  std::vector<double> gradients() const;

  void zero_gradients() noexcept;

  bool empty() const noexcept { return layers_.empty(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Builds the paper's policy-network shape: input -> [hidden + ReLU]* ->
/// linear output head. hidden_sizes may be empty for a linear model.
Mlp make_mlp(std::size_t input, const std::vector<std::size_t>& hidden_sizes,
             std::size_t output, util::Rng& rng, Init init = Init::kHe);

}  // namespace fedpower::nn
