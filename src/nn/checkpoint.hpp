// Model checkpointing: persist a parameter vector to disk and restore it.
// Uses the same float32 payload as the federated wire format, so a saved
// checkpoint is byte-identical to what a device would upload — convenient
// for offline inspection of federated rounds.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace fedpower::nn {

/// Writes parameters atomically (temp file + fsync + rename, wrapped in
/// the checksummed FPCK snapshot container); throws std::runtime_error on
/// I/O failure. A crash mid-save never leaves a torn checkpoint.
void save_parameters(const std::string& path, std::span<const double> params);

/// Reads parameters back from either an FPCK-wrapped checkpoint (checksum
/// validated) or a bare FPNN wire payload. Throws std::runtime_error on
/// I/O failure or container corruption and std::invalid_argument on
/// malformed payload content, with distinct messages for truncation,
/// trailing garbage, bad magic and unsupported versions.
std::vector<double> load_parameters(const std::string& path);

}  // namespace fedpower::nn
