// Model checkpointing: persist a parameter vector to disk and restore it.
// Uses the same float32 payload as the federated wire format, so a saved
// checkpoint is byte-identical to what a device would upload — convenient
// for offline inspection of federated rounds.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace fedpower::nn {

/// Writes parameters to the given path; throws std::runtime_error on I/O
/// failure.
void save_parameters(const std::string& path, std::span<const double> params);

/// Reads parameters back; throws std::runtime_error on I/O failure and
/// std::invalid_argument on malformed content.
std::vector<double> load_parameters(const std::string& path);

}  // namespace fedpower::nn
