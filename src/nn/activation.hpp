// Parameter-free activation layers.
#pragma once

#include "nn/layer.hpp"

namespace fedpower::nn {

/// Rectified linear unit, the activation the paper's policy network uses.
class Relu final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::size_t param_count() const noexcept override { return 0; }
  void copy_params_to(std::span<double>) const override {}
  void set_params_from(std::span<const double>) override {}
  void copy_grads_to(std::span<double>) const override {}
  void zero_grads() noexcept override {}
  std::unique_ptr<Layer> clone() const override;

 private:
  Matrix input_;
};

/// Hyperbolic tangent (available for ablations; the paper uses ReLU).
class Tanh final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::size_t param_count() const noexcept override { return 0; }
  void copy_params_to(std::span<double>) const override {}
  void set_params_from(std::span<const double>) override {}
  void copy_grads_to(std::span<double>) const override {}
  void zero_grads() noexcept override {}
  std::unique_ptr<Layer> clone() const override;

 private:
  Matrix output_;
};

}  // namespace fedpower::nn
