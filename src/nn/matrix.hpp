// Dense row-major matrix of doubles. Deliberately small: the policy networks
// in this library are tiny (hundreds of parameters), so we favour a clear,
// assert-checked implementation over BLAS bindings.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/assert.hpp"

namespace fedpower::nn {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix filled with the given value.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// A 1 x n row vector from a flat list of values.
  [[nodiscard]] static Matrix row_vector(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    FEDPOWER_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    FEDPOWER_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::vector<double>& data() noexcept { return data_; }
  const std::vector<double>& data() const noexcept { return data_; }

  /// Matrix product this(r x k) * other(k x c).
  [[nodiscard]] Matrix matmul(const Matrix& other) const;

  /// this^T * other, without materializing the transpose.
  [[nodiscard]] Matrix transpose_matmul(const Matrix& other) const;

  /// this * other^T, without materializing the transpose.
  [[nodiscard]] Matrix matmul_transpose(const Matrix& other) const;

  [[nodiscard]] Matrix transpose() const;

  /// Elementwise operations; shapes must match.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Elementwise (Hadamard) product.
  [[nodiscard]] Matrix hadamard(const Matrix& other) const;

  /// Adds a 1 x cols row vector to every row (bias broadcast).
  void add_row_broadcast(const Matrix& row);

  /// Sum over rows, yielding a 1 x cols vector (bias gradient).
  [[nodiscard]] Matrix column_sums() const;

  [[nodiscard]] bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace fedpower::nn
