#include "nn/gradcheck.hpp"

#include <cmath>
#include <functional>

namespace fedpower::nn {

namespace {

GradCheckResult run_check(Mlp& model,
                          const std::function<double()>& loss_value,
                          const std::function<Matrix()>& loss_grad,
                          double epsilon) {
  // Analytic gradients via one forward/backward pass.
  model.zero_gradients();
  const Matrix grad_out = loss_grad();
  model.backward(grad_out);
  const std::vector<double> analytic = model.gradients();

  std::vector<double> params = model.parameters();
  GradCheckResult result;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double saved = params[i];
    params[i] = saved + epsilon;
    model.set_parameters(params);
    const double plus = loss_value();
    params[i] = saved - epsilon;
    model.set_parameters(params);
    const double minus = loss_value();
    params[i] = saved;
    const double numeric = (plus - minus) / (2.0 * epsilon);
    const double abs_err = std::abs(analytic[i] - numeric);
    const double denom =
        std::max({std::abs(analytic[i]), std::abs(numeric), 1e-8});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
  }
  model.set_parameters(params);
  return result;
}

}  // namespace

GradCheckResult check_gradients(Mlp& model, const Loss& loss,
                                const Matrix& input, const Matrix& target,
                                double epsilon) {
  const auto value = [&] {
    return loss.evaluate(model.forward(input), target).value;
  };
  const auto grad = [&] {
    return loss.evaluate(model.forward(input), target).grad;
  };
  return run_check(model, value, grad, epsilon);
}

GradCheckResult check_gradients_masked(Mlp& model, const Loss& loss,
                                       const Matrix& input,
                                       const std::vector<std::size_t>& actions,
                                       const std::vector<double>& targets,
                                       double epsilon) {
  const auto value = [&] {
    return loss.evaluate_masked(model.forward(input), actions, targets).value;
  };
  const auto grad = [&] {
    return loss.evaluate_masked(model.forward(input), actions, targets).grad;
  };
  return run_check(model, value, grad, epsilon);
}

}  // namespace fedpower::nn
