// Finite-difference gradient verification. Used by the test suite to prove
// that analytic backpropagation matches numerical derivatives for every
// layer/loss combination we ship.
#pragma once

#include <vector>

#include "nn/loss.hpp"
#include "nn/mlp.hpp"

namespace fedpower::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;  ///< max |analytic - numeric| over parameters
  double max_rel_error = 0.0;  ///< max relative error over parameters
};

/// Compares backprop gradients with central finite differences of the loss
/// wrt every parameter, for an elementwise (full-target) loss.
GradCheckResult check_gradients(Mlp& model, const Loss& loss,
                                const Matrix& input, const Matrix& target,
                                double epsilon = 1e-6);

/// Same, for the masked contextual-bandit loss.
GradCheckResult check_gradients_masked(Mlp& model, const Loss& loss,
                                       const Matrix& input,
                                       const std::vector<std::size_t>& actions,
                                       const std::vector<double>& targets,
                                       double epsilon = 1e-6);

}  // namespace fedpower::nn
