#include "nn/dense.hpp"

#include <algorithm>
#include <cmath>

namespace fedpower::nn {

Dense::Dense(std::size_t in, std::size_t out, Init init, util::Rng& rng)
    : in_(in), out_(out), w_(in, out), b_(1, out), gw_(in, out), gb_(1, out) {
  FEDPOWER_EXPECTS(in > 0 && out > 0);
  double scale = 0.0;
  switch (init) {
    case Init::kZero:
      scale = 0.0;
      break;
    case Init::kHe:
      scale = std::sqrt(2.0 / static_cast<double>(in));
      break;
    case Init::kXavier:
      scale = std::sqrt(2.0 / static_cast<double>(in + out));
      break;
  }
  if (scale > 0.0)
    for (double& w : w_.data()) w = rng.normal(0.0, scale);
}

Matrix Dense::forward(const Matrix& input) {
  FEDPOWER_EXPECTS(input.cols() == in_);
  input_ = input;
  Matrix out = input.matmul(w_);
  out.add_row_broadcast(b_);
  return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
  FEDPOWER_EXPECTS(grad_output.cols() == out_);
  FEDPOWER_EXPECTS(grad_output.rows() == input_.rows());
  gw_ += input_.transpose_matmul(grad_output);
  gb_ += grad_output.column_sums();
  return grad_output.matmul_transpose(w_);
}

std::size_t Dense::param_count() const noexcept { return in_ * out_ + out_; }

void Dense::copy_params_to(std::span<double> dst) const {
  FEDPOWER_EXPECTS(dst.size() == param_count());
  std::copy(w_.data().begin(), w_.data().end(), dst.begin());
  std::copy(b_.data().begin(), b_.data().end(),
            dst.begin() + static_cast<std::ptrdiff_t>(w_.size()));
}

void Dense::set_params_from(std::span<const double> src) {
  FEDPOWER_EXPECTS(src.size() == param_count());
  std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(w_.size()),
            w_.data().begin());
  std::copy(src.begin() + static_cast<std::ptrdiff_t>(w_.size()), src.end(),
            b_.data().begin());
}

void Dense::copy_grads_to(std::span<double> dst) const {
  FEDPOWER_EXPECTS(dst.size() == param_count());
  std::copy(gw_.data().begin(), gw_.data().end(), dst.begin());
  std::copy(gb_.data().begin(), gb_.data().end(),
            dst.begin() + static_cast<std::ptrdiff_t>(gw_.size()));
}

void Dense::zero_grads() noexcept {
  std::fill(gw_.data().begin(), gw_.data().end(), 0.0);
  std::fill(gb_.data().begin(), gb_.data().end(), 0.0);
}

std::unique_ptr<Layer> Dense::clone() const {
  return std::make_unique<Dense>(*this);
}

}  // namespace fedpower::nn
