// Wire encoding of model parameters for federated transfers.
//
// Training happens in double precision, but parameters cross the (simulated)
// network as little-endian float32 with a small header. For the paper's
// 719-parameter policy network this yields ~2.9 kB per transfer, matching
// the 2.8 kB reported in §IV-C.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fedpower::nn {

/// Serialized model payload header layout:
///   bytes 0..3  magic "FPNN"
///   bytes 4..5  format version (currently 1), little-endian
///   bytes 6..7  reserved (zero)
///   bytes 8..11 parameter count, little-endian uint32
///   bytes 12..  parameters as little-endian IEEE-754 float32
inline constexpr std::size_t kPayloadHeaderBytes = 12;
inline constexpr std::uint16_t kPayloadVersion = 1;

/// Encodes parameters as a float32 payload.
std::vector<std::uint8_t> encode_parameters(std::span<const double> params);

/// Decodes a payload produced by encode_parameters.
/// Throws std::invalid_argument on malformed input (bad magic, truncated
/// data, wrong version, or length mismatch).
std::vector<double> decode_parameters(std::span<const std::uint8_t> payload);

/// Size in bytes of the payload for a model with the given parameter count.
std::size_t payload_size(std::size_t param_count) noexcept;

}  // namespace fedpower::nn
