// Regression losses. The paper trains the policy network with the Huber
// loss (§III-C); MSE is provided for ablations and gradient checking.
//
// For contextual-bandit training only the output column of the action that
// was actually taken carries a target; the masked_* helpers compute the loss
// and gradient over (row, action) pairs and leave all other outputs with
// zero gradient.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.hpp"

namespace fedpower::nn {

struct LossResult {
  double value = 0.0;  ///< mean loss over the contributing elements
  Matrix grad;         ///< dLoss/dPrediction, same shape as prediction
};

class Loss {
 public:
  virtual ~Loss() = default;

  /// Elementwise loss between same-shaped prediction and target, averaged
  /// over all elements.
  virtual LossResult evaluate(const Matrix& prediction,
                              const Matrix& target) const = 0;

  /// Bandit variant: row i contributes only at column actions[i] with target
  /// targets[i]; the returned gradient is zero elsewhere. Averaged over rows.
  virtual LossResult evaluate_masked(const Matrix& prediction,
                                     const std::vector<std::size_t>& actions,
                                     const std::vector<double>& targets)
      const = 0;
};

/// Mean squared error: L = mean((p - t)^2) / 2 with gradient (p - t)/n.
class MseLoss final : public Loss {
 public:
  LossResult evaluate(const Matrix& prediction,
                      const Matrix& target) const override;
  LossResult evaluate_masked(const Matrix& prediction,
                             const std::vector<std::size_t>& actions,
                             const std::vector<double>& targets) const override;
};

/// Huber loss: quadratic for |e| <= delta, linear beyond — robust to the
/// reward outliers that occur when the power constraint is first violated.
class HuberLoss final : public Loss {
 public:
  explicit HuberLoss(double delta = 1.0);

  double delta() const noexcept { return delta_; }

  LossResult evaluate(const Matrix& prediction,
                      const Matrix& target) const override;
  LossResult evaluate_masked(const Matrix& prediction,
                             const std::vector<std::size_t>& actions,
                             const std::vector<double>& targets) const override;

 private:
  double pointwise(double error) const noexcept;
  double derivative(double error) const noexcept;

  double delta_;
};

}  // namespace fedpower::nn
