// First-order optimizers operating on flat parameter/gradient vectors.
// The paper trains the policy network with Adam (§III-C).
#pragma once

#include <vector>

#include "ckpt/binary_io.hpp"

namespace fedpower::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update step in place. params and grads must have equal,
  /// constant size across calls (the optimizer keeps per-parameter state).
  virtual void step(std::vector<double>& params,
                    const std::vector<double>& grads) = 0;

  /// Clears momentum/moment state (e.g. when a fresh global model arrives
  /// and the old curvature estimates no longer apply).
  virtual void reset() noexcept = 0;

  /// Serializes the mutable state (momenta, step counters) — not the
  /// hyperparameters, which are reconstructed from config on resume.
  virtual void save_state(ckpt::Writer& out) const = 0;

  /// Restores state saved by the same concrete type; the section tag makes
  /// restoring an Adam snapshot into an Sgd a named error.
  virtual void restore_state(ckpt::Reader& in) = 0;
};

/// Plain stochastic gradient descent with optional momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0);

  void step(std::vector<double>& params,
            const std::vector<double>& grads) override;
  void reset() noexcept override;
  void save_state(ckpt::Writer& out) const override;
  void restore_state(ckpt::Reader& in) override;

  double learning_rate() const noexcept { return lr_; }

 private:
  double lr_;        // lint: ckpt-skip(hyperparameter fixed at construction)
  double momentum_;  // lint: ckpt-skip(hyperparameter fixed at construction)
  std::vector<double> velocity_;
};

/// Adam (Kingma & Ba, ICLR'15) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  void step(std::vector<double>& params,
            const std::vector<double>& grads) override;
  void reset() noexcept override;
  void save_state(ckpt::Writer& out) const override;
  void restore_state(ckpt::Reader& in) override;

  double learning_rate() const noexcept { return lr_; }
  long step_count() const noexcept { return t_; }

 private:
  double lr_;       // lint: ckpt-skip(hyperparameter fixed at construction)
  double beta1_;    // lint: ckpt-skip(hyperparameter fixed at construction)
  double beta2_;    // lint: ckpt-skip(hyperparameter fixed at construction)
  double epsilon_;  // lint: ckpt-skip(hyperparameter fixed at construction)
  long t_ = 0;
  std::vector<double> m_;
  std::vector<double> v_;
};

}  // namespace fedpower::nn
