// Layer abstraction for the small feed-forward networks used as DVFS
// policies. Layers cache whatever they need from forward() so that a
// subsequent backward() can compute gradients; the usual
// forward -> backward -> optimizer step cycle applies.
#pragma once

#include <memory>
#include <span>

#include "nn/matrix.hpp"

namespace fedpower::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a [batch x in] input and caches the
  /// activations required by backward().
  virtual Matrix forward(const Matrix& input) = 0;

  /// Propagates [batch x out] output gradients back to the input and
  /// accumulates parameter gradients. Must follow a matching forward().
  virtual Matrix backward(const Matrix& grad_output) = 0;

  /// Number of trainable scalars in this layer (0 for activations).
  virtual std::size_t param_count() const noexcept = 0;

  /// Copies parameters into dst (size must equal param_count()).
  virtual void copy_params_to(std::span<double> dst) const = 0;

  /// Overwrites parameters from src (size must equal param_count()).
  virtual void set_params_from(std::span<const double> src) = 0;

  /// Copies accumulated gradients into dst (size must equal param_count()).
  virtual void copy_grads_to(std::span<double> dst) const = 0;

  /// Clears accumulated parameter gradients.
  virtual void zero_grads() noexcept = 0;

  /// Polymorphic deep copy (used when clients fork the global model).
  virtual std::unique_ptr<Layer> clone() const = 0;
};

}  // namespace fedpower::nn
