// Fully connected layer: y = x W + b, with W stored [in x out].
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace fedpower::nn {

/// Weight initialization schemes (He for ReLU nets, Xavier otherwise).
enum class Init { kZero, kHe, kXavier };

class Dense final : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, Init init, util::Rng& rng);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;

  std::size_t param_count() const noexcept override;
  void copy_params_to(std::span<double> dst) const override;
  void set_params_from(std::span<const double> src) override;
  void copy_grads_to(std::span<double> dst) const override;
  void zero_grads() noexcept override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

  const Matrix& weights() const noexcept { return w_; }
  const Matrix& bias() const noexcept { return b_; }
  const Matrix& weight_grads() const noexcept { return gw_; }
  const Matrix& bias_grads() const noexcept { return gb_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Matrix w_;       // [in x out]
  Matrix b_;       // [1 x out]
  Matrix gw_;      // accumulated dL/dW
  Matrix gb_;      // accumulated dL/db
  Matrix input_;   // cached forward input
};

}  // namespace fedpower::nn
