#!/usr/bin/env bash
# Crash-safety smoke test: SIGKILL a checkpointing run mid-flight, then
# resume it from the rotation directory and require a clean finish. This is
# the end-to-end (process-level) companion of the in-process bit-identity
# tests in tests/ckpt/test_crash_resume.cpp.
#
#   scripts/kill_resume_smoke.sh [path/to/run_experiment]
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

runner="${1:-./build/examples/run_experiment}"
if [[ ! -x "$runner" ]]; then
  echo "kill_resume_smoke: runner not found: $runner (build first)" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/fedpower_kill_resume.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT

config="$workdir/config.ini"
cat > "$config" <<EOF
[run]
seed = 42
mode = federated
[fed]
rounds = 40
steps_per_round = 20
[eval]
episode_intervals = 10
[workload]
device0 = fft
device1 = radix
[checkpoint]
every_rounds = 1
dir = $workdir/snapshots
keep = 3
EOF

echo "== start a checkpointing run and SIGKILL it mid-flight =="
"$runner" "$config" > "$workdir/first.log" 2>&1 &
pid=$!

# Wait until at least one snapshot is durable, then kill without warning.
# If the run finishes before we strike, that's fine too — the snapshots are
# on disk either way and the resume below still exercises recovery.
for _ in $(seq 1 200); do
  if compgen -G "$workdir/snapshots/snapshot-*.fpck" > /dev/null; then
    break
  fi
  if ! kill -0 "$pid" 2> /dev/null; then
    break
  fi
  sleep 0.05
done
kill -KILL "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true

if ! compgen -G "$workdir/snapshots/snapshot-*.fpck" > /dev/null; then
  echo "kill_resume_smoke: no snapshot was written before the kill" >&2
  exit 1
fi
echo "snapshots on disk: $(ls "$workdir/snapshots" | tr '\n' ' ')"

echo "== resume from the rotation directory and run to completion =="
"$runner" "$config" "checkpoint.resume_from=$workdir/snapshots" \
  > "$workdir/second.log" 2>&1
grep -q "federated" "$workdir/second.log" || {
  echo "kill_resume_smoke: resumed run produced no federated summary" >&2
  cat "$workdir/second.log" >&2
  exit 1
}

echo "== kill-and-resume smoke passed =="
