#!/usr/bin/env bash
# Crash-safety smoke test: SIGKILL a checkpointing run mid-flight, then
# resume it from the rotation directory and require a clean finish. This is
# the clean (no-chaos) profile of chaos_smoke.sh, kept as its own entry
# point so the historic invocation keeps working; the chaos profile
# additionally arms churn, transport faults and round deadlines.
#
#   scripts/kill_resume_smoke.sh [path/to/run_experiment]
set -euo pipefail

exec env CHAOS_SMOKE_PROFILE=clean \
  "$(dirname "${BASH_SOURCE[0]}")/chaos_smoke.sh" "$@"
