#!/usr/bin/env bash
# One-shot gate: build + full test suite + fedpower-lint + (when clang-tidy
# is installed) the curated clang-tidy build. Exits nonzero on any finding.
#
#   scripts/check.sh            # default preset
#   scripts/check.sh --asan     # additionally run the asan preset suite
#   scripts/check.sh --tsan     # additionally run the tsan preset suite
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

run_sanitizer_presets=()
for arg in "$@"; do
  case "$arg" in
    --asan) run_sanitizer_presets+=(asan) ;;
    --tsan) run_sanitizer_presets+=(tsan) ;;
    *) echo "usage: scripts/check.sh [--asan] [--tsan]" >&2; exit 2 ;;
  esac
done

echo "== configure + build (preset: default) =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"

echo "== ctest (includes the lint label) =="
ctest --preset default

echo "== fedpower-lint (explicit, for visible output) =="
lint_start=$SECONDS
./build/tools/fedpower_lint --root . src bench tests examples
./build/tools/fedpower_lint --sarif --root . src bench tests examples \
  > build/lint_report.sarif
echo "lint wall time: $((SECONDS - lint_start))s (SARIF archived at build/lint_report.sarif)"

echo "== kill-and-resume smoke (SIGKILL mid-run, resume from snapshot) =="
scripts/kill_resume_smoke.sh ./build/examples/run_experiment

echo "== chaos smoke (churn + faults + deadline, SIGKILL mid-soak, replay check) =="
scripts/chaos_smoke.sh ./build/examples/run_experiment

echo "== Byzantine attack smoke (25% sign-flippers vs median + defense) =="
scripts/attack_smoke.sh ./build/examples/run_experiment

echo "== fleet-scale bench (lazy 100k-device fleet + retry-accounting guard) =="
./build/bench/bench_fleet_scale

echo "== async-server bench (determinism gate + TCP throughput) =="
./build/bench/bench_server_throughput

echo "== async-server smoke (250 clients, kill one mid-round, quorum commit) =="
scripts/server_smoke.sh ./build/bench/bench_server_throughput ./build/examples/run_experiment

echo "== chaos soak bench (days-equivalent run, kill/resume under fire) =="
(cd build/bench && ./bench_soak)
cp build/bench/BENCH_soak.json build/BENCH_soak.json
echo "soak report archived at build/BENCH_soak.json"

echo "== tcp chaos smoke (socket-fault proxy, reconnect/resume, bit-identity) =="
scripts/tcp_chaos_smoke.sh ./build/bench/bench_soak
cp build/bench/BENCH_tcp_soak.json build/BENCH_tcp_soak.json
echo "tcp soak report archived at build/BENCH_tcp_soak.json"

for preset in "${run_sanitizer_presets[@]}"; do
  echo "== sanitizer suite (preset: ${preset}) =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset"
  if [[ "$preset" == asan ]]; then
    echo "== attack smoke under asan (memory bugs in the attack path) =="
    scripts/attack_smoke.sh "./build-${preset}/examples/run_experiment"
  fi
done

if command -v clang-tidy > /dev/null 2>&1; then
  echo "== clang-tidy (preset: tidy, .clang-tidy curated checks) =="
  cmake --preset tidy
  cmake --build --preset tidy -j "$(nproc)"
else
  echo "== clang-tidy not installed — skipping tidy preset =="
fi

echo "== all checks passed =="
