#!/usr/bin/env bash
# TCP chaos smoke: drive the soak's fault stack over real sockets — the
# seeded fault-injection proxy in front of the epoll front end, client
# processes reconnecting and resuming through refusals / resets /
# truncations / stalls, SIGKILLs mid-frame — and require the committed
# model bytes bit-identical to the in-process reference at 1/2/4 workers
# (DESIGN.md §14). The bench writes BENCH_tcp_soak.json next to itself
# and exits nonzero on any gate failure; this wrapper re-checks the
# report's verdict so a silently-truncated JSON cannot pass.
#
#   scripts/tcp_chaos_smoke.sh [path/to/bench_soak]
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

bench="${1:-./build/bench/bench_soak}"
if [[ ! -x "$bench" ]]; then
  echo "tcp_chaos_smoke: bench not found: $bench (build first)" >&2
  exit 2
fi

bench_dir="$(dirname "$bench")"
bench_bin="./$(basename "$bench")"
(cd "$bench_dir" && "$bench_bin" --tcp)

report="$bench_dir/BENCH_tcp_soak.json"
if [[ ! -f "$report" ]]; then
  echo "tcp_chaos_smoke: FAIL — no report at $report" >&2
  exit 1
fi
if ! grep -q '"passed": true' "$report"; then
  echo "tcp_chaos_smoke: FAIL — report does not say passed:" >&2
  cat "$report" >&2
  exit 1
fi
echo "tcp_chaos_smoke: PASS (report at $report)"
