#!/usr/bin/env bash
# Chaos crash-safety smoke: run a chaos-seeded, fault-injected, deadlined
# federation with checkpointing, SIGKILL it mid-soak, resume from the
# rotation directory, and require (a) a clean finish and (b) stdout
# identical to an uninterrupted run of the same config — the chaos-seed
# replay contract (DESIGN.md §13) checked at process level: the kill, the
# resume and every scheduled fault must leave no trace in the results.
#
#   scripts/chaos_smoke.sh [path/to/run_experiment]
#
# CHAOS_SMOKE_PROFILE=clean reproduces the historic kill/resume smoke
# (same kill choreography, no chaos layers) — kill_resume_smoke.sh is a
# thin wrapper over that profile.
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

runner="${1:-./build/examples/run_experiment}"
profile="${CHAOS_SMOKE_PROFILE:-chaos}"
if [[ ! -x "$runner" ]]; then
  echo "chaos_smoke: runner not found: $runner (build first)" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/fedpower_chaos_smoke.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT

config="$workdir/config.ini"
cat > "$config" <<EOF
[run]
seed = 42
mode = federated
[fed]
rounds = 40
steps_per_round = 20
[eval]
episode_intervals = 10
[workload]
device0 = fft
device1 = radix
device2 = lu
device3 = ocean
[checkpoint]
every_rounds = 1
dir = $workdir/snapshots
keep = 3
EOF
if [[ "$profile" == chaos ]]; then
  cat >> "$config" <<EOF
[defense]
enabled = true
[faults]
transport_drop = 0.02
transport_delay = 0.1
transport_delay_s = 0.05
transport_seed = 7
[chaos]
enabled = true
seed = 2026
leave_probability = 0.1
rejoin_probability = 0.5
shock_probability = 0.1
EOF
  # The deadline rides as a CLI override so both profiles share one file.
  deadline_override=("fed.deadline_s=0.05")
else
  deadline_override=()
fi

echo "== start a ${profile}-profile checkpointing run and SIGKILL it mid-soak =="
"$runner" "$config" "${deadline_override[@]}" > "$workdir/first.log" 2>&1 &
pid=$!

# Wait until at least one snapshot is durable, then kill without warning.
# If the run finishes before we strike, that's fine too — the snapshots
# are on disk either way and the resume below still exercises recovery.
for _ in $(seq 1 200); do
  if compgen -G "$workdir/snapshots/snapshot-*.fpck" > /dev/null; then
    break
  fi
  if ! kill -0 "$pid" 2> /dev/null; then
    break
  fi
  sleep 0.05
done
kill -KILL "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true

if ! compgen -G "$workdir/snapshots/snapshot-*.fpck" > /dev/null; then
  echo "chaos_smoke: no snapshot was written before the kill" >&2
  exit 1
fi
echo "snapshots on disk: $(ls "$workdir/snapshots" | tr '\n' ' ')"

echo "== resume from the rotation directory and run to completion =="
"$runner" "$config" "${deadline_override[@]}" \
  "checkpoint.resume_from=$workdir/snapshots" \
  > "$workdir/resumed.log" 2>&1
grep -q "federated" "$workdir/resumed.log" || {
  echo "chaos_smoke: resumed run produced no federated summary" >&2
  cat "$workdir/resumed.log" >&2
  exit 1
}

echo "== replay invariant: uninterrupted run must match the resumed one =="
"$runner" "$config" "${deadline_override[@]}" "checkpoint.every_rounds=0" \
  "checkpoint.dir=" > "$workdir/clean.log" 2>&1
if ! diff -u "$workdir/clean.log" "$workdir/resumed.log"; then
  echo "chaos_smoke: resumed output diverged from the uninterrupted run" >&2
  exit 1
fi

echo "== ${profile} kill-and-resume smoke passed (replay bit-identical) =="
