#!/usr/bin/env bash
# Byzantine-robustness smoke test: an 8-device fleet where 25% of the
# devices sign-flip every upload must, with coordinate-median aggregation
# and the defense pipeline on, land its final evaluation reward within
# tolerance of an attack-free run of the same seed. Process-level
# companion of bench/bench_ablation_robustness.cpp's sweep — run it
# against the asan build to shake memory bugs out of the attack path.
#
#   scripts/attack_smoke.sh [path/to/run_experiment]
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

runner="${1:-./build/examples/run_experiment}"
if [[ ! -x "$runner" ]]; then
  echo "attack_smoke: runner not found: $runner (build first)" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/fedpower_attack_smoke.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT

config="$workdir/config.ini"
cat > "$config" <<EOF
[run]
seed = 42
mode = federated
[fed]
rounds = 25
steps_per_round = 20
aggregation = median
[eval]
episode_intervals = 15
[defense]
enabled = true
[workload]
device0 = fft, lu
device1 = raytrace, volrend
device2 = water-ns, water-sp
device3 = ocean, radix
device4 = fmm, radiosity
device5 = barnes, cholesky
device6 = fft, radix
device7 = lu, ocean
EOF

echo "== attack-free run (8 devices, median, defense on) =="
"$runner" "$config" "eval.csv=$workdir/clean.csv" | tee "$workdir/clean.log"

echo "== attacked run (25% sign-flippers, same seed) =="
"$runner" "$config" "faults.attack=sign-flip" "faults.attack_fraction=0.25" \
  "eval.csv=$workdir/attacked.csv" | tee "$workdir/attacked.log"

grep -q "compromised devices: 6, 7" "$workdir/attacked.log" || {
  echo "attack_smoke: expected devices 6 and 7 to be compromised" >&2
  exit 1
}
grep -q "defense: screened" "$workdir/attacked.log" || {
  echo "attack_smoke: defense reported no screening activity" >&2
  exit 1
}

# Final eval reward = fleet mean over the last 8 rounds of the per-round
# per-device reward CSV (header row skipped).
tail_mean() {
  tail -n 8 "$1" | awk -F, '{
    for (c = 2; c <= NF; ++c) { sum += $c; n += 1 }
  } END { printf "%.6f", sum / n }'
}
clean=$(tail_mean "$workdir/clean.csv")
attacked=$(tail_mean "$workdir/attacked.csv")
echo "final eval reward: attack-free ${clean}, defended-under-attack ${attacked}"

# Tolerance: the defended run must keep at least 85% of the attack-free
# reward (the acceptance bench holds the tighter 90% bar over 48 rounds;
# this is a short smoke).
awk -v clean="$clean" -v attacked="$attacked" 'BEGIN {
  if (clean <= 0) { print "attack_smoke: degenerate attack-free reward"; exit 1 }
  ratio = attacked / clean
  printf "defense recovery ratio: %.3f\n", ratio
  if (ratio < 0.85) { print "attack_smoke: defense lost too much reward"; exit 1 }
}'

echo "== attack smoke passed =="
