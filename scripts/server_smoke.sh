#!/usr/bin/env bash
# Async-server crash-tolerance smoke (DESIGN.md §12): drive 250 concurrent
# TCP connections into the epoll front end, kill one client halfway
# through a frame, and require the round to still commit at quorum 200
# with exactly the dead client dropped and the truncation counted. The
# scenario itself lives in bench/bench_server_throughput.cpp --smoke; this
# wrapper is the process-level entry point check.sh and CI call.
#
# A second step runs the INI-driven serve pipeline end to end and checks
# that the deterministic commit mode reproduces the synchronous server's
# output byte for byte (the run_experiment-level bit-identity contract).
#
#   scripts/server_smoke.sh [path/to/bench_server_throughput] [path/to/run_experiment]
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

bench="${1:-./build/bench/bench_server_throughput}"
runner="${2:-./build/examples/run_experiment}"
if [[ ! -x "$bench" ]]; then
  echo "server_smoke: bench not found: $bench (build first)" >&2
  exit 2
fi

echo "== 250-client kill-one-mid-round smoke =="
"$bench" --smoke

if [[ -x "$runner" ]]; then
  echo "== serve-vs-sync run_experiment bit-identity (workers 1/2/4) =="
  workdir="$(mktemp -d "${TMPDIR:-/tmp}/fedpower_server_smoke.XXXXXX")"
  trap 'rm -rf "$workdir"' EXIT
  "$runner" configs/async_server.ini "fed.rounds=5" "serve.enabled=false" \
    > "$workdir/sync.out"
  for workers in 1 2 4; do
    "$runner" configs/async_server.ini "fed.rounds=5" \
      "serve.workers=$workers" > "$workdir/serve_$workers.out"
    if ! cmp -s "$workdir/sync.out" "$workdir/serve_$workers.out"; then
      echo "server_smoke: serve output diverged from sync at" \
           "workers=$workers" >&2
      exit 1
    fi
  done
  echo "serve output identical to sync at every worker count"
else
  echo "server_smoke: run_experiment not found, skipping bit-identity step"
fi

echo "== server smoke passed =="
