// Secure fleet: the full privacy stack on top of the paper's federation.
//
// The paper's core privacy argument is "only weights leave the device".
// This example layers the two stronger guarantees the library ships:
//   1. per-round update privatization (clip + Gaussian noise,
//      fed::DpClient) so an honest-but-curious server learns little about
//      any device's recent samples, and
//   2. secure aggregation (pairwise additive masking,
//      fed::SecureAggregationSession) so the server never even sees an
//      individual (privatized) model — only the sum.
//
//   $ ./secure_fleet
#include <cstdio>
#include <memory>

#include "fedpower.hpp"

int main() {
  using namespace fedpower;

  constexpr std::size_t kDevices = 3;
  constexpr std::size_t kRounds = 40;

  // --- devices: disjoint workload shards, DP decorators on every upload.
  util::Rng root(99);
  const auto suite = sim::splash2_suite();
  std::vector<std::unique_ptr<sim::Processor>> processors;
  std::vector<std::unique_ptr<sim::Workload>> workloads;
  std::vector<std::unique_ptr<core::PowerController>> controllers;
  std::vector<std::unique_ptr<fed::DpClient>> dp_clients;
  fed::DpConfig dp_config;
  dp_config.clip_norm = 1.0;
  dp_config.noise_multiplier = 0.02;
  dp_config.seed = 7;
  for (std::size_t d = 0; d < kDevices; ++d) {
    processors.push_back(std::make_unique<sim::Processor>(
        sim::ProcessorConfig{}, root.split()));
    workloads.push_back(std::make_unique<sim::RandomWorkload>(
        std::vector<sim::AppProfile>{suite[4 * d], suite[4 * d + 1],
                                     suite[4 * d + 2], suite[4 * d + 3]}));
    processors.back()->set_workload(workloads.back().get());
    controllers.push_back(std::make_unique<core::PowerController>(
        core::ControllerConfig{}, processors.back().get(), root.split()));
    dp_clients.push_back(
        std::make_unique<fed::DpClient>(controllers.back().get(), dp_config));
  }

  const std::size_t dim = controllers.front()->agent().param_count();
  std::vector<double> global = controllers.front()->local_parameters();

  std::printf("devices: %zu | DP: clip %.1f, z = %.2f | secure aggregation: "
              "pairwise masks over %zu params\n\n",
              kDevices, dp_config.clip_norm, dp_config.noise_multiplier,
              dim);

  // --- manual round loop: broadcast, local training, DP upload, MASKED
  //     aggregation. The server-side sum never sees a single model.
  core::ControllerConfig eval_controller_config;
  core::EvalConfig eval_config;
  eval_config.episode_intervals = 30;
  const core::Evaluator evaluator(eval_controller_config, eval_config);

  for (std::size_t round = 1; round <= kRounds; ++round) {
    // Fresh masking session per round (fresh pairwise secrets).
    fed::SecureAggregationSession session(kDevices, dim,
                                          0xFEDABCD ^ round);
    std::vector<std::vector<std::uint64_t>> masked;
    for (std::size_t d = 0; d < kDevices; ++d) {
      dp_clients[d]->receive_global(global);
      dp_clients[d]->run_local_round();
      // The device uploads ONLY the masked fixed-point payload.
      masked.push_back(
          session.masked_payload(d, dp_clients[d]->local_parameters()));
    }
    global = session.unmask_mean(masked);

    if (round % 10 == 0) {
      const auto result = evaluator.run_episode(
          evaluator.neural_policy(global), suite[round % suite.size()],
          1000 + round);
      std::printf("round %3zu  eval app %-10s reward %.3f  power %.3f W\n",
                  round, result.app.c_str(), result.mean_reward,
                  result.mean_power_w);
    }
  }

  // --- final check across all twelve apps.
  util::RunningStats reward;
  util::RunningStats violation;
  std::uint64_t seed = 9000;
  for (const auto& app : suite) {
    const auto r = evaluator.run_episode(evaluator.neural_policy(global),
                                         app, seed++);
    reward.add(r.mean_reward);
    violation.add(r.violation_rate);
  }
  std::printf("\nfinal global policy over all 12 apps: reward %.3f, "
              "violation rate %.3f\n",
              reward.mean(), violation.mean());
  std::printf("\nWhat the server saw each round: %zu payloads of %zu\n"
              "uint64 words that are individually indistinguishable from\n"
              "noise, whose sum is the (DP-noised) model average. Raw\n"
              "traces never left the devices; individual models never\n"
              "reached the server.\n",
              kDevices, dim);
  return 0;
}
