// Config-driven experiment runner: reproduce any paper scenario (or your
// own) from an INI file, no recompilation.
//
//   $ ./run_experiment configs/scenario2.ini
//   $ ./run_experiment configs/scenario2.ini fed.rounds=20   # CLI override
//
// Run without arguments to print the recognized keys and a sample config.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "fedpower.hpp"

namespace {

using namespace fedpower;

constexpr const char* kSampleConfig = R"(# FedPower experiment configuration
[run]
seed = 42
mode = both            ; federated | local | both
num_threads = 1        ; worker threads for local training; 0 = all cores
lazy_fleet = false     ; defer device construction to first selection
metrics_jsonl =        ; optional path for per-round JSONL metrics

[fed]
rounds = 100
steps_per_round = 100
aggregation = mean     ; mean | weighted | median | trimmed | krum | multi-krum
participation = 1.0    ; C: fraction of eligible clients drawn per round
min_participants = 1   ; floor on the per-round draw
sampling_seed = 0      ; participation stream seed
quorum = 1             ; min surviving uploads among this round's draw
deadline_s = 0.0       ; per-round latency budget per client; over-budget
                       ; participants are demoted to dropouts (0 = off)

[agent]
learning_rate = 0.005
tau_max = 0.9
tau_decay = 5e-4
tau_min = 0.01
replay_capacity = 4000
batch_size = 128
optimize_interval = 20

[power]
p_crit_w = 0.6
k_offset_w = 0.05

[workload]
; comma-separated SPLASH-2 app names per device; add device2, device3, ...
device0 = water-ns, water-sp
device1 = ocean, radix

[eval]
episode_intervals = 30
csv =                  ; optional path for per-round reward CSV

[checkpoint]
every_rounds = 0       ; snapshot cadence; 0 disables checkpointing
dir =                  ; rotation directory (required when every_rounds > 0)
keep = 3               ; snapshots retained in the rotation
resume_from =          ; snapshot file or rotation dir to resume from

[defense]
enabled = false        ; server-side Byzantine screening + quarantine
norm_clip = 2.5        ; clip updates above this multiple of the norm median
norm_screen = 6.0      ; reject updates above this multiple (>= norm_clip)
cosine_max_distance = 0.8
warmup_rounds = 3
quarantine_threshold = 0.5
fail_penalty = 0.25
pass_credit = 0.05
probation_rounds = 3

[serve]
enabled = false        ; route rounds through the sharded serve pipeline
workers = 1            ; shard worker threads (client mod workers)
queue_depth = 256      ; per-shard SPSC queue capacity (frames)
batch = 16             ; worker batched-dequeue burst size
mode = deterministic   ; deterministic | throughput (FedAsync merge)
mixing_rate = 0.5      ; throughput mode: FedAsync alpha
staleness_power = 1.0  ; throughput mode: staleness discount exponent
idle_timeout_s = 0.0   ; TCP front end: reap idle connections (0 = off)

[faults]
attack = none          ; none | sign-flip | scale | stale-replay
attack_fraction = 0.0  ; ceil(fraction * N) highest-index devices attack
attack_scale = 25.0
stale_rounds = 5
start_round = 0
reward_scale = 1.0     ; training-reward poisoning on attacked devices
stuck_power_w = -1     ; >= 0 sticks attacked devices' power sensor there
frozen_counters = false
dvfs_stuck = false
transport_drop = 0.0   ; per-transfer drop probability (whole federation)
transport_delay = 0.0  ; per-transfer late-delivery probability
transport_delay_s = 0.05   ; latency each delayed transfer adds
transport_truncate = 0.0   ; per-transfer payload-damage probability
transport_disconnect = 0.0 ; per-transfer connection-death probability
transport_seed = 0

[chaos]
enabled = false        ; deterministic chaos schedule (DESIGN.md §13)
seed = 2026            ; chaos stream seed (replay contract)
leave_probability = 0.0    ; P(online client departs) per round
rejoin_probability = 0.5   ; P(offline client returns) per round
shock_probability = 0.0    ; P(one device's workload is shocked) per round
)";

std::vector<std::vector<sim::AppProfile>> parse_devices(
    const util::Config& config) {
  std::vector<std::vector<sim::AppProfile>> devices;
  for (std::size_t d = 0;; ++d) {
    const std::string key = "workload.device" + std::to_string(d);
    if (!config.has(key)) break;
    std::vector<sim::AppProfile> apps;
    for (const std::string& name : config.get_list(key)) {
      const auto app = sim::splash2_app(name);
      if (!app) {
        std::fprintf(stderr, "unknown application '%s' in %s\n",
                     name.c_str(), key.c_str());
        std::exit(1);
      }
      apps.push_back(*app);
    }
    if (apps.empty()) {
      std::fprintf(stderr, "%s lists no applications\n", key.c_str());
      std::exit(1);
    }
    devices.push_back(std::move(apps));
  }
  return devices;
}

fed::AggregationMode parse_aggregation(const std::string& name) {
  if (name == "mean") return fed::AggregationMode::kUnweightedMean;
  if (name == "weighted") return fed::AggregationMode::kSampleWeighted;
  if (name == "median") return fed::AggregationMode::kCoordinateMedian;
  if (name == "trimmed") return fed::AggregationMode::kTrimmedMean;
  if (name == "krum") return fed::AggregationMode::kKrum;
  if (name == "multi-krum") return fed::AggregationMode::kMultiKrum;
  throw std::invalid_argument(
      "config key 'fed.aggregation': unknown mode '" + name +
      "' (mean | weighted | median | trimmed | krum | multi-krum)");
}

fed::UploadAttack parse_attack(const std::string& name) {
  if (name == "none") return fed::UploadAttack::kNone;
  if (name == "sign-flip") return fed::UploadAttack::kSignFlip;
  if (name == "scale") return fed::UploadAttack::kScale;
  if (name == "stale-replay") return fed::UploadAttack::kStaleReplay;
  throw std::invalid_argument(
      "config key 'faults.attack': unknown attack '" + name +
      "' (none | sign-flip | scale | stale-replay)");
}

core::ExperimentConfig build_config(const util::Config& config) {
  core::ExperimentConfig experiment;
  experiment.seed =
      static_cast<std::uint64_t>(config.get_int("run.seed", 42));
  // Results are bit-identical for every value (see DESIGN.md §7); this
  // only trades wall-clock for cores.
  const long num_threads = config.get_int("run.num_threads", 1);
  if (num_threads < 0)
    throw std::invalid_argument(
        "config key 'run.num_threads': must be >= 0 (0 = all cores)");
  experiment.num_threads = static_cast<std::size_t>(num_threads);
  experiment.rounds =
      static_cast<std::size_t>(config.get_int("fed.rounds", 100));
  auto& controller = experiment.controller;
  controller.steps_per_round =
      static_cast<std::size_t>(config.get_int("fed.steps_per_round", 100));
  controller.agent.learning_rate =
      config.get_double("agent.learning_rate", 0.005);
  controller.agent.tau_max = config.get_double("agent.tau_max", 0.9);
  controller.agent.tau_decay = config.get_double("agent.tau_decay", 5e-4);
  controller.agent.tau_min = config.get_double("agent.tau_min", 0.01);
  controller.agent.replay_capacity = static_cast<std::size_t>(
      config.get_int("agent.replay_capacity", 4000));
  controller.agent.batch_size =
      static_cast<std::size_t>(config.get_int("agent.batch_size", 128));
  controller.agent.optimize_interval = static_cast<std::size_t>(
      config.get_int("agent.optimize_interval", 20));
  controller.p_crit_w = config.get_double("power.p_crit_w", 0.6);
  controller.k_offset_w = config.get_double("power.k_offset_w", 0.05);
  experiment.eval.episode_intervals = static_cast<std::size_t>(
      config.get_int("eval.episode_intervals", 30));
  const long every_rounds = config.get_int("checkpoint.every_rounds", 0);
  if (every_rounds < 0)
    throw std::invalid_argument(
        "config key 'checkpoint.every_rounds': must be >= 0 (0 = disabled)");
  experiment.checkpoint.every_rounds =
      static_cast<std::size_t>(every_rounds);
  experiment.checkpoint.dir = config.get_string("checkpoint.dir");
  const long keep = config.get_int("checkpoint.keep", 3);
  if (keep < 1)
    throw std::invalid_argument(
        "config key 'checkpoint.keep': must be >= 1");
  experiment.checkpoint.keep = static_cast<std::size_t>(keep);
  experiment.checkpoint.resume_from =
      config.get_string("checkpoint.resume_from");
  experiment.aggregation =
      parse_aggregation(config.get_string("fed.aggregation", "mean"));
  experiment.sampling.fraction =
      config.get_double("fed.participation", 1.0);
  if (experiment.sampling.fraction <= 0.0 ||
      experiment.sampling.fraction > 1.0)
    throw std::invalid_argument(
        "config key 'fed.participation': must be in (0, 1]");
  const long min_participants = config.get_int("fed.min_participants", 1);
  if (min_participants < 1)
    throw std::invalid_argument(
        "config key 'fed.min_participants': must be >= 1");
  experiment.sampling.min_clients =
      static_cast<std::size_t>(min_participants);
  experiment.sampling.seed = static_cast<std::uint64_t>(
      config.get_int("fed.sampling_seed", 0));
  const long quorum = config.get_int("fed.quorum", 1);
  if (quorum < 1)
    throw std::invalid_argument("config key 'fed.quorum': must be >= 1");
  experiment.quorum = static_cast<std::size_t>(quorum);
  experiment.lazy_fleet = config.get_bool("run.lazy_fleet", false);

  auto& defense = experiment.defense;
  defense.enabled = config.get_bool("defense.enabled", false);
  defense.norm_clip_multiplier = config.get_double("defense.norm_clip", 2.5);
  defense.norm_screen_multiplier =
      config.get_double("defense.norm_screen", 6.0);
  defense.cosine_max_distance =
      config.get_double("defense.cosine_max_distance", 0.8);
  defense.warmup_rounds = static_cast<std::size_t>(
      config.get_int("defense.warmup_rounds", 3));
  defense.quarantine_threshold =
      config.get_double("defense.quarantine_threshold", 0.5);
  defense.fail_penalty = config.get_double("defense.fail_penalty", 0.25);
  defense.pass_credit = config.get_double("defense.pass_credit", 0.05);
  defense.probation_rounds = static_cast<std::size_t>(
      config.get_int("defense.probation_rounds", 3));

  auto& serve = experiment.serve;
  serve.enabled = config.get_bool("serve.enabled", false);
  const long serve_workers = config.get_int("serve.workers", 1);
  if (serve_workers < 1)
    throw std::invalid_argument("config key 'serve.workers': must be >= 1");
  serve.workers = static_cast<std::size_t>(serve_workers);
  const long serve_depth = config.get_int("serve.queue_depth", 256);
  if (serve_depth < 1)
    throw std::invalid_argument(
        "config key 'serve.queue_depth': must be >= 1");
  serve.queue_depth = static_cast<std::size_t>(serve_depth);
  const long serve_batch = config.get_int("serve.batch", 16);
  if (serve_batch < 1)
    throw std::invalid_argument("config key 'serve.batch': must be >= 1");
  serve.batch_max = static_cast<std::size_t>(serve_batch);
  const std::string serve_mode =
      config.get_string("serve.mode", "deterministic");
  if (serve_mode == "deterministic")
    serve.deterministic = true;
  else if (serve_mode == "throughput")
    serve.deterministic = false;
  else
    throw std::invalid_argument(
        "config key 'serve.mode': unknown mode '" + serve_mode +
        "' (deterministic | throughput)");
  serve.mixing_rate = config.get_double("serve.mixing_rate", 0.5);
  if (serve.mixing_rate <= 0.0 || serve.mixing_rate > 1.0)
    throw std::invalid_argument(
        "config key 'serve.mixing_rate': must be in (0, 1]");
  serve.staleness_power = config.get_double("serve.staleness_power", 1.0);
  if (serve.staleness_power < 0.0)
    throw std::invalid_argument(
        "config key 'serve.staleness_power': must be >= 0");
  serve.idle_timeout_s = config.get_double("serve.idle_timeout_s", 0.0);
  if (serve.idle_timeout_s < 0.0)
    throw std::invalid_argument(
        "config key 'serve.idle_timeout_s': must be >= 0 (0 = disabled)");

  auto& faults = experiment.faults;
  faults.attack = parse_attack(config.get_string("faults.attack", "none"));
  faults.fraction = config.get_double("faults.attack_fraction", 0.0);
  if (faults.fraction < 0.0 || faults.fraction > 1.0)
    throw std::invalid_argument(
        "config key 'faults.attack_fraction': must be in [0, 1]");
  faults.attack_scale = config.get_double("faults.attack_scale", 25.0);
  faults.stale_rounds = static_cast<std::size_t>(
      config.get_int("faults.stale_rounds", 5));
  faults.start_round = static_cast<std::size_t>(
      config.get_int("faults.start_round", 0));
  faults.reward_poison_scale =
      config.get_double("faults.reward_scale", 1.0);
  const double stuck_power = config.get_double("faults.stuck_power_w", -1.0);
  if (stuck_power >= 0.0) {
    faults.hardware.stuck_power_sensor = true;
    faults.hardware.stuck_power_w = stuck_power;
  }
  faults.hardware.frozen_counters =
      config.get_bool("faults.frozen_counters", false);
  faults.hardware.dvfs_stuck = config.get_bool("faults.dvfs_stuck", false);
  faults.transport.drop_probability =
      config.get_double("faults.transport_drop", 0.0);
  faults.transport.delay_probability =
      config.get_double("faults.transport_delay", 0.0);
  faults.transport.injected_delay_s =
      config.get_double("faults.transport_delay_s", 0.05);
  faults.transport.truncate_probability =
      config.get_double("faults.transport_truncate", 0.0);
  faults.transport.disconnect_probability =
      config.get_double("faults.transport_disconnect", 0.0);
  faults.transport.seed = static_cast<std::uint64_t>(
      config.get_int("faults.transport_seed", 0));

  experiment.deadline_s = config.get_double("fed.deadline_s", 0.0);
  if (experiment.deadline_s < 0.0)
    throw std::invalid_argument(
        "config key 'fed.deadline_s': must be >= 0 (0 = disabled)");
  experiment.metrics_jsonl = config.get_string("run.metrics_jsonl");

  auto& chaos = experiment.chaos;
  chaos.enabled = config.get_bool("chaos.enabled", false);
  chaos.seed =
      static_cast<std::uint64_t>(config.get_int("chaos.seed", 2026));
  chaos.leave_probability =
      config.get_double("chaos.leave_probability", 0.0);
  chaos.rejoin_probability =
      config.get_double("chaos.rejoin_probability", 0.5);
  chaos.shock_probability =
      config.get_double("chaos.shock_probability", 0.0);
  if (chaos.leave_probability < 0.0 || chaos.leave_probability > 1.0 ||
      chaos.rejoin_probability < 0.0 || chaos.rejoin_probability > 1.0 ||
      chaos.shock_probability < 0.0 || chaos.shock_probability > 1.0)
    throw std::invalid_argument(
        "config section '[chaos]': probabilities must be in [0, 1]");
  return experiment;
}

void report(const char* label, const std::vector<core::RoundCurve>& devices) {
  const core::CurveSummary summary = core::summarize(devices);
  std::printf("%-10s mean reward %.3f (min %.3f) | mean power %.3f W | "
              "violation rate %.3f\n",
              label, summary.mean_reward, summary.min_reward,
              summary.mean_power_w, summary.violation_rate);
}

void report_robustness(const core::RobustnessReport& robustness) {
  if (!robustness.compromised.empty()) {
    std::string list;
    for (const std::size_t d : robustness.compromised) {
      if (!list.empty()) list += ", ";
      list += std::to_string(d);
    }
    std::printf("           compromised devices: %s\n", list.c_str());
  }
  if (!robustness.final_reputation.empty()) {
    std::printf("           defense: screened %zu upload(s), clipped %zu, "
                "max quarantined %zu, readmitted %zu\n",
                robustness.total_screened, robustness.total_clipped,
                robustness.max_quarantined, robustness.total_readmitted);
    std::string reps;
    for (const double r : robustness.final_reputation) {
      if (!reps.empty()) reps += ", ";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", r);
      reps += buf;
    }
    std::printf("           final reputation: [%s]\n", reps.c_str());
  }
  const fed::FaultInjectionStats& t = robustness.transport;
  if (t.attempted > 0 && t.delivered < t.attempted) {
    std::printf("           transport faults: %zu/%zu transfers delivered "
                "(%zu drops, %zu disconnects, %zu truncated, %zu outage "
                "failures)\n",
                t.delivered, t.attempted, t.drops, t.disconnects,
                t.truncations, t.outage_failures);
  }
  if (robustness.total_stragglers > 0)
    std::printf("           deadline: %zu straggler demotion(s)\n",
                robustness.total_stragglers);
  if (robustness.aborted_rounds > 0)
    std::printf("           quorum: %llu round abort(s), each retried\n",
                static_cast<unsigned long long>(robustness.aborted_rounds));
  const chaos::ChaosStats& c = robustness.chaos;
  if (c.rounds > 0)
    std::printf("           chaos: %llu departure(s), %llu rejoin(s), "
                "%llu shock(s), peak %llu offline\n",
                static_cast<unsigned long long>(c.departures),
                static_cast<unsigned long long>(c.rejoins),
                static_cast<unsigned long long>(c.shocks),
                static_cast<unsigned long long>(c.max_offline));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: %s <config.ini> [key=value ...]\n\nsample config:\n%s",
                argv[0], kSampleConfig);
    return 0;
  }

  util::Config config;
  try {
    config = util::Config::load(argv[1]);
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "override '%s' is not key=value\n", arg.c_str());
        return 1;
      }
      config.set(arg.substr(0, eq), arg.substr(eq + 1));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const auto devices = parse_devices(config);
  if (devices.empty()) {
    std::fprintf(stderr, "config defines no [workload] device0 entry\n");
    return 1;
  }
  const core::ExperimentConfig experiment = build_config(config);
  const auto eval_apps = sim::splash2_suite();

  std::printf("devices: %zu | rounds: %zu x %zu steps | P_crit %.2f W | "
              "seed %llu\n\n",
              devices.size(), experiment.rounds,
              experiment.controller.steps_per_round,
              experiment.controller.p_crit_w,
              static_cast<unsigned long long>(experiment.seed));

  const std::string mode = config.get_string("run.mode", "both");
  // A snapshot captures ONE run loop; with mode=both the federated and
  // local runs would fight over the same rotation directory and resume
  // source, so checkpointing requires picking a single mode.
  if (mode == "both" && (experiment.checkpoint.every_rounds > 0 ||
                         !experiment.checkpoint.resume_from.empty())) {
    std::fprintf(stderr,
                 "checkpointing requires run.mode=federated or "
                 "run.mode=local (not both)\n");
    return 1;
  }
  std::vector<core::RoundCurve> fed_curves;
  if (mode == "federated" || mode == "both") {
    const auto fed = core::run_federated(experiment, devices, eval_apps,
                                         true);
    report("federated", fed.devices);
    std::printf("           traffic %.1f kB total, %.2f kB per transfer\n",
                static_cast<double>(fed.traffic.total_bytes()) / 1000.0,
                fed.traffic.mean_transfer_bytes() / 1000.0);
    report_robustness(fed.robustness);
    fed_curves = fed.devices;

    const std::string csv_path = config.get_string("eval.csv");
    if (!csv_path.empty()) {
      util::CsvWriter csv(csv_path);
      std::vector<std::string> header = {"round"};
      for (std::size_t d = 0; d < fed.devices.size(); ++d)
        header.push_back("device" + std::to_string(d));
      csv.write_row(header);
      for (std::size_t r = 0; r < experiment.rounds; ++r) {
        std::vector<std::string> row = {std::to_string(r + 1)};
        for (const auto& device : fed.devices)
          row.push_back(util::CsvWriter::format(device.reward[r]));
        csv.write_row(row);
      }
      std::printf("           per-round rewards -> %s\n", csv_path.c_str());
    }
  }
  if (mode == "local" || mode == "both") {
    const auto local = core::run_local_only(experiment, devices, eval_apps,
                                            true);
    report("local-only", local.devices);
  }
  return 0;
}
