// Edge fleet: the paper's full federated deployment (Fig. 1), at fleet
// scale. Four edge devices with disjoint workloads collaboratively train a
// shared DVFS policy through a central federated-averaging server. Only
// model weights cross the (simulated) network — the replay buffers with the
// raw performance-counter and power traces never leave the devices.
//
//   $ ./edge_fleet [rounds] [csv_path]
//
// With a csv_path the per-round evaluation reward is written as CSV for
// plotting.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "fedpower.hpp"

int main(int argc, char** argv) {
  using namespace fedpower;

  const std::size_t rounds =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;
  const std::string csv_path = argc > 2 ? argv[2] : "";

  // Four devices, three applications each: a vision node, two stream
  // processors, and a compute node — disjoint shards of the suite.
  const struct {
    const char* role;
    const char* apps[3];
  } fleet[] = {
      {"vision node", {"raytrace", "volrend", "fft"}},
      {"stream proc A", {"ocean", "radix", "barnes"}},
      {"stream proc B", {"radiosity", "cholesky", "fmm"}},
      {"compute node", {"lu", "water-ns", "water-sp"}},
  };

  core::ExperimentConfig config;
  config.rounds = rounds;
  config.seed = 2026;
  config.eval.episode_intervals = 30;
  // Train the four devices on all available cores; the runtime guarantees
  // results identical to a serial (num_threads = 1) run.
  config.num_threads = 0;

  std::vector<std::vector<sim::AppProfile>> device_apps;
  std::printf("fleet:\n");
  for (const auto& device : fleet) {
    std::vector<sim::AppProfile> apps;
    std::printf("  %-14s trains on", device.role);
    for (const char* name : device.apps) {
      apps.push_back(*sim::splash2_app(name));
      std::printf(" %s", name);
    }
    std::printf("\n");
    device_apps.push_back(std::move(apps));
  }

  std::printf("\nrunning %zu federated rounds "
              "(T = %zu steps, Delta_DVFS = %.0f ms)...\n\n",
              rounds, config.controller.steps_per_round,
              config.controller.dvfs_interval_s * 1000.0);

  const auto result = core::run_federated(config, device_apps,
                                          sim::splash2_suite(), true);

  std::printf("%6s %10s %10s %10s %12s\n", "round", "reward", "power[W]",
              "freq[MHz]", "eval app");
  for (std::size_t r = 4; r < rounds; r += 5) {
    util::RunningStats reward;
    util::RunningStats power;
    util::RunningStats freq;
    for (const auto& device : result.devices) {
      reward.add(device.reward[r]);
      power.add(device.mean_power_w[r]);
      freq.add(device.mean_freq_mhz[r]);
    }
    std::printf("%6zu %10.3f %10.3f %10.1f %12s\n", r + 1, reward.mean(),
                power.mean(), freq.mean(),
                result.eval_app_per_round[r].c_str());
  }

  std::printf("\ncommunication (whole training run):\n");
  std::printf("  transfers        : %zu up / %zu down\n",
              result.traffic.uplink_transfers,
              result.traffic.downlink_transfers);
  std::printf("  volume           : %.1f kB up / %.1f kB down\n",
              static_cast<double>(result.traffic.uplink_bytes) / 1000.0,
              static_cast<double>(result.traffic.downlink_bytes) / 1000.0);
  std::printf("  per transfer     : %.2f kB (paper reports 2.8 kB)\n",
              result.traffic.mean_transfer_bytes() / 1000.0);
  std::printf("  simulated latency: %.2f s total\n",
              result.traffic.total_latency_s);

  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    std::vector<std::string> header = {"round"};
    for (const auto& device : fleet) header.emplace_back(device.role);
    header.emplace_back("eval_app");
    csv.write_row(header);
    for (std::size_t r = 0; r < rounds; ++r) {
      std::vector<std::string> row = {std::to_string(r + 1)};
      for (const auto& device : result.devices)
        row.push_back(util::CsvWriter::format(device.reward[r]));
      row.push_back(result.eval_app_per_round[r]);
      csv.write_row(row);
    }
    std::printf("\nper-round rewards written to %s\n", csv_path.c_str());
  }
  return 0;
}
