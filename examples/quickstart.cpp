// Quickstart: train one RL power controller on a simulated Jetson-Nano-like
// edge device and watch it learn to hold a 0.6 W power budget.
//
//   $ ./quickstart
//
// This is the single-device slice of the paper (Algorithm 1): the federated
// setting is shown in the edge_fleet example.
#include <cstdio>

#include "fedpower.hpp"

int main() {
  using namespace fedpower;

  // 1. A simulated edge processor with the Jetson Nano's 15 V/f levels,
  //    running the SPLASH-2-like 'fft' application on repeat.
  sim::ProcessorConfig processor_config;  // Jetson table, noise defaults
  sim::Processor processor(processor_config, util::Rng{/*seed=*/1});
  sim::SingleAppWorkload workload(*sim::splash2_app("fft"));
  processor.set_workload(&workload);

  // 2. A power controller with the paper's Table I hyperparameters:
  //    one-hidden-layer policy network, softmax exploration, replay buffer,
  //    0.6 W power constraint.
  core::ControllerConfig controller_config;
  core::PowerController controller(controller_config, &processor,
                                   util::Rng{/*seed=*/2});

  // 3. Train online: each step observes the counters of the last 500 ms
  //    interval, picks a V/f level, and learns from the realized reward.
  std::printf("training (2000 DVFS intervals = ~17 simulated minutes)...\n");
  std::printf("%8s %10s %10s %10s %8s\n", "step", "freq[MHz]", "power[W]",
              "reward", "temp");
  for (int step = 1; step <= 2000; ++step) {
    const sim::TelemetrySample sample = controller.step();
    if (step % 250 == 0)
      std::printf("%8d %10.1f %10.3f %10.3f %8.3f\n", step, sample.freq_mhz,
                  sample.power_w, controller.last_reward(),
                  controller.agent().temperature());
  }

  // 4. Evaluate greedily (no exploration, no learning).
  util::RunningStats freq;
  util::RunningStats power;
  util::RunningStats reward;
  std::size_t violations = 0;
  const int eval_steps = 40;
  for (int i = 0; i < eval_steps; ++i) {
    const sim::TelemetrySample sample = controller.greedy_step();
    freq.add(sample.freq_mhz);
    power.add(sample.power_w);
    reward.add(controller.last_reward());
    if (sample.true_power_w > controller.config().p_crit_w) ++violations;
  }

  std::printf("\ngreedy evaluation over %d intervals:\n", eval_steps);
  std::printf("  mean frequency : %.1f MHz (f_max = %.1f)\n", freq.mean(),
              processor.vf_table().f_max_mhz());
  std::printf("  mean power     : %.3f W (constraint %.2f W)\n", power.mean(),
              controller.config().p_crit_w);
  std::printf("  mean reward    : %.3f\n", reward.mean());
  std::printf("  violations     : %zu / %d intervals\n", violations,
              eval_steps);
  std::printf("\nThe controller holds the budget by picking a frequency\n"
              "where 'fft' consumes just under 0.6 W, instead of blindly\n"
              "running at f_max (which would draw ~0.7 W).\n");
  return 0;
}
