// Policy inspection: what did the controller actually learn?
//
// Trains a federated policy, then dumps its greedy V/f choice over a grid
// of states — power x memory intensity — as an ASCII heatmap (and
// optionally CSV). Useful for debugging reward shaping and for seeing the
// learned "throttle compute-bound, unleash memory-bound" structure at a
// glance.
//
//   $ ./policy_inspect [csv_path]
#include <cstdio>
#include <string>

#include "fedpower.hpp"

int main(int argc, char** argv) {
  using namespace fedpower;

  std::printf("training the federated policy (100 rounds, six-app split)...\n");
  core::ExperimentConfig config;
  config.rounds = 100;
  config.seed = 42;
  const auto fed = core::run_federated(
      config, core::resolve(core::six_app_split()), sim::splash2_suite(),
      false);

  util::Rng rng(0);
  nn::Mlp model = nn::make_mlp(config.controller.agent.state_dim,
                               config.controller.agent.hidden_sizes,
                               config.controller.agent.action_count, rng);
  model.set_parameters(fed.global_params);
  const rl::StateFeaturizer featurizer(config.controller.featurizer);
  const sim::VfTable table = sim::VfTable::jetson_nano();

  const auto greedy_level = [&](double power_w, double mpki, double ipc,
                                double freq_mhz) {
    sim::TelemetrySample s;
    s.freq_mhz = freq_mhz;
    s.power_w = power_w;
    s.ipc = ipc;
    s.mpki = mpki;
    s.miss_rate = std::min(1.0, mpki / 60.0);
    const auto mu =
        model.forward(nn::Matrix::row_vector(featurizer.featurize(s)));
    return rl::argmax(mu.data());
  };

  // Heatmap: rows = observed power, columns = memory intensity. The other
  // state features are pinned at typical values (f = 825.6 MHz; IPC tied
  // loosely to memory intensity).
  const double powers[] = {0.30, 0.40, 0.50, 0.55, 0.60, 0.65, 0.75};
  const double mpkis[] = {1.0, 5.0, 10.0, 20.0, 30.0, 40.0};

  std::printf("\ngreedy V/f level by (observed power, MPKI) at f = 825.6 "
              "MHz:\n\n        ");
  for (const double mpki : mpkis) std::printf("mpki%-5.0f", mpki);
  std::printf("\n");
  for (const double p : powers) {
    std::printf("P=%.2fW ", p);
    for (const double mpki : mpkis) {
      const double ipc = 1.3 - 0.015 * mpki;  // memory-bound -> lower IPC
      const std::size_t level = greedy_level(p, mpki, ipc, 825.6);
      std::printf("  %2zu     ", level);
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading: the dominant structure is horizontal — the policy asks\n"
      "for much higher frequencies when the workload is memory-bound\n"
      "(right columns, where extra clock cycles are cheap in power) and\n"
      "throttles compute-bound code (left columns). The observed-power\n"
      "axis matters less: in steady state power is nearly a function of\n"
      "(frequency, workload features), so the network leans on the\n"
      "workload counters and uses power mainly to disambiguate phases.\n");

  if (argc > 1) {
    const std::string path = argv[1];
    util::CsvWriter csv(path);
    csv.write_row({"power_w", "mpki", "ipc", "greedy_level", "freq_mhz"});
    for (double p = 0.2; p <= 0.8 + 1e-9; p += 0.025) {
      for (double mpki = 0.0; mpki <= 45.0 + 1e-9; mpki += 2.5) {
        const double ipc = 1.3 - 0.015 * mpki;
        const std::size_t level = greedy_level(p, mpki, ipc, 825.6);
        csv.write_row("", {p, mpki, ipc, static_cast<double>(level),
                           table.level(level).freq_mhz});
      }
    }
    std::printf("\nfull grid written to %s\n", path.c_str());
  }
  return 0;
}
