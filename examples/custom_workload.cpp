// Custom workload and custom silicon: everything in the library is
// parameterized, so a downstream user can model their own device and
// applications instead of the Jetson Nano + SPLASH-2 setup the paper uses.
//
// This example defines a hypothetical low-power edge SoC with 8 V/f levels
// and two in-house applications (a sensor-fusion loop and a CNN inference
// server), trains a controller under a tighter 0.4 W budget, and prints
// the frequency the policy settles on for each application phase.
//
//   $ ./custom_workload
#include <cstdio>

#include "fedpower.hpp"

int main() {
  using namespace fedpower;

  // --- 1. The device: 8 levels, 200..1200 MHz, 0.70..1.05 V, and a
  //        cheaper, leakier process than the Jetson model.
  sim::ProcessorConfig processor_config;
  processor_config.vf_table =
      sim::VfTable::linear(8, 200.0, 1200.0, 0.70, 1.05);
  processor_config.power.c_eff_nf = 0.55;
  processor_config.power.leakage_w_per_v = 0.10;
  processor_config.perf.mem_latency_ns = 95.0;  // slower LPDDR

  // --- 2. The workload: two custom applications with phased behaviour.
  //        PhaseProfile = {base_cpi, llc_apki, miss_rate, activity, instr}.
  const sim::AppProfile sensor_fusion{
      "sensor-fusion",
      {
          sim::PhaseProfile{0.9, 55.0, 0.5, 0.5, 2.0e9},   // ingest (memory)
          sim::PhaseProfile{0.7, 15.0, 0.2, 0.8, 4.0e9},   // filter (compute)
      }};
  const sim::AppProfile cnn_server{
      "cnn-server",
      {
          sim::PhaseProfile{0.6, 20.0, 0.3, 0.85, 6.0e9},  // conv layers
          sim::PhaseProfile{0.8, 45.0, 0.45, 0.6, 2.0e9},  // feature maps
      }};
  sim::validate(sensor_fusion);
  sim::validate(cnn_server);

  // --- 3. The controller: tighter 0.4 W budget, action space sized to the
  //        custom table, featurizer normalized to the custom f_max.
  core::ControllerConfig config;
  config.p_crit_w = 0.4;
  config.agent.action_count = processor_config.vf_table.size();
  config.featurizer.f_max_mhz = processor_config.vf_table.f_max_mhz();
  config.agent.tau_decay = 0.002;  // shorter run than the paper's

  sim::Processor processor(processor_config, util::Rng{11});
  sim::RotationWorkload workload({sensor_fusion, cnn_server});
  processor.set_workload(&workload);
  core::PowerController controller(config, &processor, util::Rng{12});

  std::printf("training on the custom SoC (3000 intervals, 0.4 W budget)...\n");
  controller.run_steps(3000);

  // --- 4. Inspect the learned policy per application.
  std::printf("\nlearned greedy behaviour:\n");
  util::AsciiTable out({"app", "mean freq [MHz]", "mean power [W]",
                        "violations", "reward"});
  for (const sim::AppProfile* app : {&sensor_fusion, &cnn_server}) {
    sim::Processor eval_proc(processor_config, util::Rng{13});
    sim::SingleAppWorkload eval_workload(*app);
    eval_proc.set_workload(&eval_workload);
    core::PowerController eval_controller(config, &eval_proc, util::Rng{14});
    eval_controller.receive_global(controller.local_parameters());

    util::RunningStats freq;
    util::RunningStats power;
    util::RunningStats reward;
    std::size_t violations = 0;
    const int intervals = 40;
    for (int i = 0; i < intervals; ++i) {
      const sim::TelemetrySample s = eval_controller.greedy_step();
      freq.add(s.freq_mhz);
      power.add(s.power_w);
      reward.add(eval_controller.last_reward());
      if (s.true_power_w > config.p_crit_w) ++violations;
    }
    out.add_row(app->name,
                {freq.mean(), power.mean(),
                 static_cast<double>(violations), reward.mean()});
  }
  std::printf("%s\n", out.to_string().c_str());
  std::printf("The policy picks different operating points per app: the\n"
              "memory-heavy fusion loop can clock higher within 0.4 W than\n"
              "the switching-heavy CNN server.\n");
  return 0;
}
