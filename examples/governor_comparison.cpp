// Governor comparison: the paper's §I motivation, made concrete.
//
// Classic OS frequency governors ignore application characteristics: the
// performance governor blows through the power budget on compute-bound
// code, powersave wastes the budget everywhere, and even a hand-tuned
// reactive power-cap controller oscillates around phase changes. This
// example runs all of them — plus a trained RL policy — across the twelve
// SPLASH-2 applications under the paper's 0.6 W constraint.
//
//   $ ./governor_comparison
#include <cstdio>
#include <functional>
#include <memory>

#include "fedpower.hpp"

namespace {

using namespace fedpower;

struct Summary {
  double reward = 0.0;
  double power = 0.0;
  double freq = 0.0;
  double violation = 0.0;
};

Summary evaluate_policy(const core::Evaluator& evaluator,
                        const core::PolicyFn& policy) {
  util::RunningStats reward;
  util::RunningStats power;
  util::RunningStats freq;
  util::RunningStats violation;
  std::uint64_t seed = 100;
  for (const auto& app : sim::splash2_suite()) {
    const core::EvalResult r = evaluator.run_episode(policy, app, seed++);
    reward.add(r.mean_reward);
    power.add(r.mean_power_w);
    freq.add(r.mean_freq_mhz);
    violation.add(r.violation_rate);
  }
  return Summary{reward.mean(), power.mean(), freq.mean(), violation.mean()};
}

core::PolicyFn governor_policy(std::shared_ptr<sim::Governor> governor,
                               const sim::VfTable& table) {
  return [governor, &table](const sim::TelemetrySample& sample) {
    return governor->select_level(sample, table);
  };
}

}  // namespace

int main() {
  core::ControllerConfig controller_config;
  core::EvalConfig eval_config;
  const core::Evaluator evaluator(controller_config, eval_config);
  static const sim::VfTable table = sim::VfTable::jetson_nano();

  // Train the RL policy federatedly on the six-app split (the paper's
  // strongest configuration).
  std::printf("training the federated RL policy (100 rounds)...\n\n");
  core::ExperimentConfig experiment;
  experiment.rounds = 100;
  experiment.seed = 7;
  const auto fed = core::run_federated(
      experiment, core::resolve(core::six_app_split()), sim::splash2_suite(),
      false);

  util::AsciiTable out({"policy", "mean reward", "mean power [W]",
                        "mean freq [MHz]", "violation rate"});
  const auto add = [&](const std::string& name, const Summary& s) {
    out.add_row(name, {s.reward, s.power, s.freq, s.violation});
  };

  add("performance governor",
      evaluate_policy(evaluator,
                      governor_policy(
                          std::make_shared<sim::PerformanceGovernor>(),
                          table)));
  add("powersave governor",
      evaluate_policy(evaluator,
                      governor_policy(
                          std::make_shared<sim::PowersaveGovernor>(), table)));
  add("ondemand governor",
      evaluate_policy(evaluator,
                      governor_policy(
                          std::make_shared<sim::OndemandGovernor>(), table)));
  add("power-cap (reactive 0.6 W)",
      evaluate_policy(
          evaluator,
          governor_policy(std::make_shared<sim::PowerCapGovernor>(0.6),
                          table)));
  add("federated RL (ours)",
      evaluate_policy(evaluator,
                      evaluator.neural_policy(fed.global_params)));

  std::printf("%s\n", out.to_string().c_str());
  std::printf(
      "Reading the table:\n"
      "  * performance/ondemand peg f_max: fast but ~50%% of intervals\n"
      "    violate the 0.6 W budget on compute-bound apps;\n"
      "  * powersave never violates but throws away ~90%% of the\n"
      "    achievable performance;\n"
      "  * the reactive power-cap governor is decent but purely\n"
      "    reactive - it has to *see* a violation to respond;\n"
      "  * the learned policy anticipates per-application behaviour from\n"
      "    the performance counters and lands just under the budget.\n");
  return 0;
}
