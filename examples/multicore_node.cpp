// Multi-core edge node: the Jetson Nano's real topology — four cores, one
// shared clock (paper §IV) — under a rail-level power budget.
//
// Three cores run different applications, one idles. The RL controller
// observes rail telemetry and sets the single shared V/f level, so it must
// learn the *joint* behaviour: the budget binds at whatever the busiest
// mix draws, and the optimal frequency is lower than any single app's.
//
//   $ ./multicore_node
#include <cstdio>
#include <memory>

#include "fedpower.hpp"

int main() {
  using namespace fedpower;

  sim::MulticoreConfig config = sim::MulticoreConfig::jetson_nano_4core();
  sim::MulticoreProcessor processor(config, util::Rng{21});

  sim::SingleAppWorkload camera(*sim::splash2_app("raytrace"));
  sim::SingleAppWorkload analytics(*sim::splash2_app("lu"));
  sim::SingleAppWorkload compression(*sim::splash2_app("radix"));
  processor.set_workload(0, &camera);
  processor.set_workload(1, &analytics);
  processor.set_workload(2, &compression);
  // Core 3 idles.

  core::ControllerConfig controller_config;
  controller_config.p_crit_w = 1.5;    // rail budget for 3 busy cores
  controller_config.k_offset_w = 0.1;
  controller_config.featurizer.power_scale_w = 3.0;  // rail power is larger
  controller_config.agent.tau_decay = 0.002;
  core::PowerController controller(controller_config, &processor,
                                   util::Rng{22});

  std::printf("3 busy cores (raytrace, lu, radix) + 1 idle, shared clock,\n"
              "rail budget %.1f W\n\n", controller_config.p_crit_w);
  std::printf("training (3000 intervals)...\n");
  controller.run_steps(3000);

  util::RunningStats freq;
  util::RunningStats power;
  util::RunningStats reward;
  std::size_t violations = 0;
  const int eval_steps = 40;
  for (int i = 0; i < eval_steps; ++i) {
    const sim::TelemetrySample rail = controller.greedy_step();
    freq.add(rail.freq_mhz);
    power.add(rail.power_w);
    reward.add(controller.last_reward());
    if (rail.true_power_w > controller_config.p_crit_w) ++violations;
  }

  std::printf("\ngreedy evaluation over %d intervals:\n", eval_steps);
  std::printf("  shared frequency : %.1f MHz\n", freq.mean());
  std::printf("  rail power       : %.3f W (budget %.1f W)\n", power.mean(),
              controller_config.p_crit_w);
  std::printf("  reward           : %.3f\n", reward.mean());
  std::printf("  violations       : %zu / %d\n", violations, eval_steps);

  std::printf("\nper-core view (last interval):\n");
  std::printf("  %-6s %-10s %10s %10s %8s\n", "core", "app", "power[W]",
              "IPC", "MPKI");
  for (std::size_t c = 0; c < processor.core_count(); ++c) {
    const sim::TelemetrySample& s = processor.core_sample(c);
    std::printf("  %-6zu %-10s %10.3f %10.3f %8.2f\n", c,
                s.app_name.c_str(), s.true_power_w, s.ipc, s.mpki);
  }

  std::printf("\nFor contrast, a single busy core at the learned level\n"
              "would leave most of the 1.5 W budget unused — the shared\n"
              "clock forces one compromise frequency for all cores, which\n"
              "is exactly why the learned level sits below every single\n"
              "app's solo optimum.\n");
  return 0;
}
