
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/drift.cpp" "src/rl/CMakeFiles/fedpower_rl.dir/drift.cpp.o" "gcc" "src/rl/CMakeFiles/fedpower_rl.dir/drift.cpp.o.d"
  "/root/repo/src/rl/neural_agent.cpp" "src/rl/CMakeFiles/fedpower_rl.dir/neural_agent.cpp.o" "gcc" "src/rl/CMakeFiles/fedpower_rl.dir/neural_agent.cpp.o.d"
  "/root/repo/src/rl/neural_q_agent.cpp" "src/rl/CMakeFiles/fedpower_rl.dir/neural_q_agent.cpp.o" "gcc" "src/rl/CMakeFiles/fedpower_rl.dir/neural_q_agent.cpp.o.d"
  "/root/repo/src/rl/policy.cpp" "src/rl/CMakeFiles/fedpower_rl.dir/policy.cpp.o" "gcc" "src/rl/CMakeFiles/fedpower_rl.dir/policy.cpp.o.d"
  "/root/repo/src/rl/q_replay_buffer.cpp" "src/rl/CMakeFiles/fedpower_rl.dir/q_replay_buffer.cpp.o" "gcc" "src/rl/CMakeFiles/fedpower_rl.dir/q_replay_buffer.cpp.o.d"
  "/root/repo/src/rl/replay_buffer.cpp" "src/rl/CMakeFiles/fedpower_rl.dir/replay_buffer.cpp.o" "gcc" "src/rl/CMakeFiles/fedpower_rl.dir/replay_buffer.cpp.o.d"
  "/root/repo/src/rl/reward.cpp" "src/rl/CMakeFiles/fedpower_rl.dir/reward.cpp.o" "gcc" "src/rl/CMakeFiles/fedpower_rl.dir/reward.cpp.o.d"
  "/root/repo/src/rl/schedule.cpp" "src/rl/CMakeFiles/fedpower_rl.dir/schedule.cpp.o" "gcc" "src/rl/CMakeFiles/fedpower_rl.dir/schedule.cpp.o.d"
  "/root/repo/src/rl/state.cpp" "src/rl/CMakeFiles/fedpower_rl.dir/state.cpp.o" "gcc" "src/rl/CMakeFiles/fedpower_rl.dir/state.cpp.o.d"
  "/root/repo/src/rl/tabular.cpp" "src/rl/CMakeFiles/fedpower_rl.dir/tabular.cpp.o" "gcc" "src/rl/CMakeFiles/fedpower_rl.dir/tabular.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fedpower_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fedpower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
