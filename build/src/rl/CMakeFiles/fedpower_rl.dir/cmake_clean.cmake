file(REMOVE_RECURSE
  "CMakeFiles/fedpower_rl.dir/drift.cpp.o"
  "CMakeFiles/fedpower_rl.dir/drift.cpp.o.d"
  "CMakeFiles/fedpower_rl.dir/neural_agent.cpp.o"
  "CMakeFiles/fedpower_rl.dir/neural_agent.cpp.o.d"
  "CMakeFiles/fedpower_rl.dir/neural_q_agent.cpp.o"
  "CMakeFiles/fedpower_rl.dir/neural_q_agent.cpp.o.d"
  "CMakeFiles/fedpower_rl.dir/policy.cpp.o"
  "CMakeFiles/fedpower_rl.dir/policy.cpp.o.d"
  "CMakeFiles/fedpower_rl.dir/q_replay_buffer.cpp.o"
  "CMakeFiles/fedpower_rl.dir/q_replay_buffer.cpp.o.d"
  "CMakeFiles/fedpower_rl.dir/replay_buffer.cpp.o"
  "CMakeFiles/fedpower_rl.dir/replay_buffer.cpp.o.d"
  "CMakeFiles/fedpower_rl.dir/reward.cpp.o"
  "CMakeFiles/fedpower_rl.dir/reward.cpp.o.d"
  "CMakeFiles/fedpower_rl.dir/schedule.cpp.o"
  "CMakeFiles/fedpower_rl.dir/schedule.cpp.o.d"
  "CMakeFiles/fedpower_rl.dir/state.cpp.o"
  "CMakeFiles/fedpower_rl.dir/state.cpp.o.d"
  "CMakeFiles/fedpower_rl.dir/tabular.cpp.o"
  "CMakeFiles/fedpower_rl.dir/tabular.cpp.o.d"
  "libfedpower_rl.a"
  "libfedpower_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedpower_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
