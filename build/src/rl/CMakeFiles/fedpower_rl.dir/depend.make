# Empty dependencies file for fedpower_rl.
# This may be replaced when dependencies are built.
