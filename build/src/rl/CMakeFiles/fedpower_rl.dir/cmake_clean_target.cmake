file(REMOVE_RECURSE
  "libfedpower_rl.a"
)
