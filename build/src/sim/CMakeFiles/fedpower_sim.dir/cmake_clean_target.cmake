file(REMOVE_RECURSE
  "libfedpower_sim.a"
)
