
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/application.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/application.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/application.cpp.o.d"
  "/root/repo/src/sim/generator.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/generator.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/generator.cpp.o.d"
  "/root/repo/src/sim/governor.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/governor.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/governor.cpp.o.d"
  "/root/repo/src/sim/multicore.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/multicore.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/multicore.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/perf_model.cpp.o.d"
  "/root/repo/src/sim/power_model.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/power_model.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/power_model.cpp.o.d"
  "/root/repo/src/sim/processor.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/processor.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/processor.cpp.o.d"
  "/root/repo/src/sim/splash2.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/splash2.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/splash2.cpp.o.d"
  "/root/repo/src/sim/telemetry.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/telemetry.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/telemetry.cpp.o.d"
  "/root/repo/src/sim/thermal.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/thermal.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/thermal.cpp.o.d"
  "/root/repo/src/sim/trace_io.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/trace_io.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/trace_io.cpp.o.d"
  "/root/repo/src/sim/vf_table.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/vf_table.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/vf_table.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/workload.cpp.o.d"
  "/root/repo/src/sim/workload_extra.cpp" "src/sim/CMakeFiles/fedpower_sim.dir/workload_extra.cpp.o" "gcc" "src/sim/CMakeFiles/fedpower_sim.dir/workload_extra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fedpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
