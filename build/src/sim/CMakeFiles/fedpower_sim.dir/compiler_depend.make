# Empty compiler generated dependencies file for fedpower_sim.
# This may be replaced when dependencies are built.
