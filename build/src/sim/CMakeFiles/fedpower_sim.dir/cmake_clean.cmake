file(REMOVE_RECURSE
  "CMakeFiles/fedpower_sim.dir/application.cpp.o"
  "CMakeFiles/fedpower_sim.dir/application.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/generator.cpp.o"
  "CMakeFiles/fedpower_sim.dir/generator.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/governor.cpp.o"
  "CMakeFiles/fedpower_sim.dir/governor.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/multicore.cpp.o"
  "CMakeFiles/fedpower_sim.dir/multicore.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/perf_model.cpp.o"
  "CMakeFiles/fedpower_sim.dir/perf_model.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/power_model.cpp.o"
  "CMakeFiles/fedpower_sim.dir/power_model.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/processor.cpp.o"
  "CMakeFiles/fedpower_sim.dir/processor.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/splash2.cpp.o"
  "CMakeFiles/fedpower_sim.dir/splash2.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/telemetry.cpp.o"
  "CMakeFiles/fedpower_sim.dir/telemetry.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/thermal.cpp.o"
  "CMakeFiles/fedpower_sim.dir/thermal.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/trace_io.cpp.o"
  "CMakeFiles/fedpower_sim.dir/trace_io.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/vf_table.cpp.o"
  "CMakeFiles/fedpower_sim.dir/vf_table.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/workload.cpp.o"
  "CMakeFiles/fedpower_sim.dir/workload.cpp.o.d"
  "CMakeFiles/fedpower_sim.dir/workload_extra.cpp.o"
  "CMakeFiles/fedpower_sim.dir/workload_extra.cpp.o.d"
  "libfedpower_sim.a"
  "libfedpower_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedpower_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
