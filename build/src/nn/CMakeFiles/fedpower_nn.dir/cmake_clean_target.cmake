file(REMOVE_RECURSE
  "libfedpower_nn.a"
)
