file(REMOVE_RECURSE
  "CMakeFiles/fedpower_nn.dir/activation.cpp.o"
  "CMakeFiles/fedpower_nn.dir/activation.cpp.o.d"
  "CMakeFiles/fedpower_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/fedpower_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/fedpower_nn.dir/dense.cpp.o"
  "CMakeFiles/fedpower_nn.dir/dense.cpp.o.d"
  "CMakeFiles/fedpower_nn.dir/gradcheck.cpp.o"
  "CMakeFiles/fedpower_nn.dir/gradcheck.cpp.o.d"
  "CMakeFiles/fedpower_nn.dir/loss.cpp.o"
  "CMakeFiles/fedpower_nn.dir/loss.cpp.o.d"
  "CMakeFiles/fedpower_nn.dir/matrix.cpp.o"
  "CMakeFiles/fedpower_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/fedpower_nn.dir/mlp.cpp.o"
  "CMakeFiles/fedpower_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/fedpower_nn.dir/optimizer.cpp.o"
  "CMakeFiles/fedpower_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/fedpower_nn.dir/serialize.cpp.o"
  "CMakeFiles/fedpower_nn.dir/serialize.cpp.o.d"
  "libfedpower_nn.a"
  "libfedpower_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedpower_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
