# Empty compiler generated dependencies file for fedpower_nn.
# This may be replaced when dependencies are built.
