file(REMOVE_RECURSE
  "libfedpower_baselines.a"
)
