file(REMOVE_RECURSE
  "CMakeFiles/fedpower_baselines.dir/collab_policy.cpp.o"
  "CMakeFiles/fedpower_baselines.dir/collab_policy.cpp.o.d"
  "CMakeFiles/fedpower_baselines.dir/profit.cpp.o"
  "CMakeFiles/fedpower_baselines.dir/profit.cpp.o.d"
  "libfedpower_baselines.a"
  "libfedpower_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedpower_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
