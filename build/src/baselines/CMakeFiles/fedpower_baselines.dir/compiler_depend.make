# Empty compiler generated dependencies file for fedpower_baselines.
# This may be replaced when dependencies are built.
