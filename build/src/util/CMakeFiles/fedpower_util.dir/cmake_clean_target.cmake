file(REMOVE_RECURSE
  "libfedpower_util.a"
)
