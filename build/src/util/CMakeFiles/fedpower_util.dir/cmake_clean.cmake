file(REMOVE_RECURSE
  "CMakeFiles/fedpower_util.dir/config.cpp.o"
  "CMakeFiles/fedpower_util.dir/config.cpp.o.d"
  "CMakeFiles/fedpower_util.dir/csv.cpp.o"
  "CMakeFiles/fedpower_util.dir/csv.cpp.o.d"
  "CMakeFiles/fedpower_util.dir/log.cpp.o"
  "CMakeFiles/fedpower_util.dir/log.cpp.o.d"
  "CMakeFiles/fedpower_util.dir/rng.cpp.o"
  "CMakeFiles/fedpower_util.dir/rng.cpp.o.d"
  "CMakeFiles/fedpower_util.dir/stats.cpp.o"
  "CMakeFiles/fedpower_util.dir/stats.cpp.o.d"
  "CMakeFiles/fedpower_util.dir/table.cpp.o"
  "CMakeFiles/fedpower_util.dir/table.cpp.o.d"
  "libfedpower_util.a"
  "libfedpower_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedpower_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
