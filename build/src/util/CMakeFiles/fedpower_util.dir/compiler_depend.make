# Empty compiler generated dependencies file for fedpower_util.
# This may be replaced when dependencies are built.
