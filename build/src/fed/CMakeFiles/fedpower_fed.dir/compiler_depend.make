# Empty compiler generated dependencies file for fedpower_fed.
# This may be replaced when dependencies are built.
