file(REMOVE_RECURSE
  "libfedpower_fed.a"
)
