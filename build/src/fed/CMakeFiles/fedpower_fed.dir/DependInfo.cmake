
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fed/aggregate.cpp" "src/fed/CMakeFiles/fedpower_fed.dir/aggregate.cpp.o" "gcc" "src/fed/CMakeFiles/fedpower_fed.dir/aggregate.cpp.o.d"
  "/root/repo/src/fed/async.cpp" "src/fed/CMakeFiles/fedpower_fed.dir/async.cpp.o" "gcc" "src/fed/CMakeFiles/fedpower_fed.dir/async.cpp.o.d"
  "/root/repo/src/fed/codec.cpp" "src/fed/CMakeFiles/fedpower_fed.dir/codec.cpp.o" "gcc" "src/fed/CMakeFiles/fedpower_fed.dir/codec.cpp.o.d"
  "/root/repo/src/fed/dp.cpp" "src/fed/CMakeFiles/fedpower_fed.dir/dp.cpp.o" "gcc" "src/fed/CMakeFiles/fedpower_fed.dir/dp.cpp.o.d"
  "/root/repo/src/fed/federation.cpp" "src/fed/CMakeFiles/fedpower_fed.dir/federation.cpp.o" "gcc" "src/fed/CMakeFiles/fedpower_fed.dir/federation.cpp.o.d"
  "/root/repo/src/fed/personalize.cpp" "src/fed/CMakeFiles/fedpower_fed.dir/personalize.cpp.o" "gcc" "src/fed/CMakeFiles/fedpower_fed.dir/personalize.cpp.o.d"
  "/root/repo/src/fed/secure_agg.cpp" "src/fed/CMakeFiles/fedpower_fed.dir/secure_agg.cpp.o" "gcc" "src/fed/CMakeFiles/fedpower_fed.dir/secure_agg.cpp.o.d"
  "/root/repo/src/fed/tcp_transport.cpp" "src/fed/CMakeFiles/fedpower_fed.dir/tcp_transport.cpp.o" "gcc" "src/fed/CMakeFiles/fedpower_fed.dir/tcp_transport.cpp.o.d"
  "/root/repo/src/fed/transport.cpp" "src/fed/CMakeFiles/fedpower_fed.dir/transport.cpp.o" "gcc" "src/fed/CMakeFiles/fedpower_fed.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fedpower_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
