file(REMOVE_RECURSE
  "CMakeFiles/fedpower_fed.dir/aggregate.cpp.o"
  "CMakeFiles/fedpower_fed.dir/aggregate.cpp.o.d"
  "CMakeFiles/fedpower_fed.dir/async.cpp.o"
  "CMakeFiles/fedpower_fed.dir/async.cpp.o.d"
  "CMakeFiles/fedpower_fed.dir/codec.cpp.o"
  "CMakeFiles/fedpower_fed.dir/codec.cpp.o.d"
  "CMakeFiles/fedpower_fed.dir/dp.cpp.o"
  "CMakeFiles/fedpower_fed.dir/dp.cpp.o.d"
  "CMakeFiles/fedpower_fed.dir/federation.cpp.o"
  "CMakeFiles/fedpower_fed.dir/federation.cpp.o.d"
  "CMakeFiles/fedpower_fed.dir/personalize.cpp.o"
  "CMakeFiles/fedpower_fed.dir/personalize.cpp.o.d"
  "CMakeFiles/fedpower_fed.dir/secure_agg.cpp.o"
  "CMakeFiles/fedpower_fed.dir/secure_agg.cpp.o.d"
  "CMakeFiles/fedpower_fed.dir/tcp_transport.cpp.o"
  "CMakeFiles/fedpower_fed.dir/tcp_transport.cpp.o.d"
  "CMakeFiles/fedpower_fed.dir/transport.cpp.o"
  "CMakeFiles/fedpower_fed.dir/transport.cpp.o.d"
  "libfedpower_fed.a"
  "libfedpower_fed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedpower_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
