
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/fedpower_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/fedpower_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/evaluate.cpp" "src/core/CMakeFiles/fedpower_core.dir/evaluate.cpp.o" "gcc" "src/core/CMakeFiles/fedpower_core.dir/evaluate.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/fedpower_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/fedpower_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/fedpower_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/fedpower_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/fedpower_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/fedpower_core.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rl/CMakeFiles/fedpower_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/fed/CMakeFiles/fedpower_fed.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fedpower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fedpower_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedpower_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedpower_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
