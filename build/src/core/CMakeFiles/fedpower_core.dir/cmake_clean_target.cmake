file(REMOVE_RECURSE
  "libfedpower_core.a"
)
