# Empty compiler generated dependencies file for fedpower_core.
# This may be replaced when dependencies are built.
