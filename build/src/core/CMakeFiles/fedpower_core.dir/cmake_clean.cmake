file(REMOVE_RECURSE
  "CMakeFiles/fedpower_core.dir/controller.cpp.o"
  "CMakeFiles/fedpower_core.dir/controller.cpp.o.d"
  "CMakeFiles/fedpower_core.dir/evaluate.cpp.o"
  "CMakeFiles/fedpower_core.dir/evaluate.cpp.o.d"
  "CMakeFiles/fedpower_core.dir/experiment.cpp.o"
  "CMakeFiles/fedpower_core.dir/experiment.cpp.o.d"
  "CMakeFiles/fedpower_core.dir/metrics.cpp.o"
  "CMakeFiles/fedpower_core.dir/metrics.cpp.o.d"
  "CMakeFiles/fedpower_core.dir/scenario.cpp.o"
  "CMakeFiles/fedpower_core.dir/scenario.cpp.o.d"
  "libfedpower_core.a"
  "libfedpower_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedpower_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
