
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/test_collab_policy.cpp" "tests/CMakeFiles/fedpower_tests.dir/baselines/test_collab_policy.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/baselines/test_collab_policy.cpp.o.d"
  "/root/repo/tests/baselines/test_profit.cpp" "tests/CMakeFiles/fedpower_tests.dir/baselines/test_profit.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/baselines/test_profit.cpp.o.d"
  "/root/repo/tests/core/test_controller.cpp" "tests/CMakeFiles/fedpower_tests.dir/core/test_controller.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/core/test_controller.cpp.o.d"
  "/root/repo/tests/core/test_evaluate.cpp" "tests/CMakeFiles/fedpower_tests.dir/core/test_evaluate.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/core/test_evaluate.cpp.o.d"
  "/root/repo/tests/core/test_experiment.cpp" "tests/CMakeFiles/fedpower_tests.dir/core/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/core/test_experiment.cpp.o.d"
  "/root/repo/tests/core/test_metrics.cpp" "tests/CMakeFiles/fedpower_tests.dir/core/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/core/test_metrics.cpp.o.d"
  "/root/repo/tests/core/test_scenario.cpp" "tests/CMakeFiles/fedpower_tests.dir/core/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/core/test_scenario.cpp.o.d"
  "/root/repo/tests/core/test_switching.cpp" "tests/CMakeFiles/fedpower_tests.dir/core/test_switching.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/core/test_switching.cpp.o.d"
  "/root/repo/tests/fed/test_aggregate.cpp" "tests/CMakeFiles/fedpower_tests.dir/fed/test_aggregate.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/fed/test_aggregate.cpp.o.d"
  "/root/repo/tests/fed/test_async.cpp" "tests/CMakeFiles/fedpower_tests.dir/fed/test_async.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/fed/test_async.cpp.o.d"
  "/root/repo/tests/fed/test_codec.cpp" "tests/CMakeFiles/fedpower_tests.dir/fed/test_codec.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/fed/test_codec.cpp.o.d"
  "/root/repo/tests/fed/test_dp.cpp" "tests/CMakeFiles/fedpower_tests.dir/fed/test_dp.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/fed/test_dp.cpp.o.d"
  "/root/repo/tests/fed/test_fed_properties.cpp" "tests/CMakeFiles/fedpower_tests.dir/fed/test_fed_properties.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/fed/test_fed_properties.cpp.o.d"
  "/root/repo/tests/fed/test_federation.cpp" "tests/CMakeFiles/fedpower_tests.dir/fed/test_federation.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/fed/test_federation.cpp.o.d"
  "/root/repo/tests/fed/test_participation.cpp" "tests/CMakeFiles/fedpower_tests.dir/fed/test_participation.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/fed/test_participation.cpp.o.d"
  "/root/repo/tests/fed/test_personalize.cpp" "tests/CMakeFiles/fedpower_tests.dir/fed/test_personalize.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/fed/test_personalize.cpp.o.d"
  "/root/repo/tests/fed/test_robust_aggregate.cpp" "tests/CMakeFiles/fedpower_tests.dir/fed/test_robust_aggregate.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/fed/test_robust_aggregate.cpp.o.d"
  "/root/repo/tests/fed/test_secure_agg.cpp" "tests/CMakeFiles/fedpower_tests.dir/fed/test_secure_agg.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/fed/test_secure_agg.cpp.o.d"
  "/root/repo/tests/fed/test_tcp_transport.cpp" "tests/CMakeFiles/fedpower_tests.dir/fed/test_tcp_transport.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/fed/test_tcp_transport.cpp.o.d"
  "/root/repo/tests/fed/test_transport.cpp" "tests/CMakeFiles/fedpower_tests.dir/fed/test_transport.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/fed/test_transport.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/fedpower_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_learning.cpp" "tests/CMakeFiles/fedpower_tests.dir/integration/test_learning.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/integration/test_learning.cpp.o.d"
  "/root/repo/tests/integration/test_multicore_control.cpp" "tests/CMakeFiles/fedpower_tests.dir/integration/test_multicore_control.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/integration/test_multicore_control.cpp.o.d"
  "/root/repo/tests/integration/test_paper_claims.cpp" "tests/CMakeFiles/fedpower_tests.dir/integration/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/integration/test_paper_claims.cpp.o.d"
  "/root/repo/tests/integration/test_privacy_stack.cpp" "tests/CMakeFiles/fedpower_tests.dir/integration/test_privacy_stack.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/integration/test_privacy_stack.cpp.o.d"
  "/root/repo/tests/integration/test_public_api.cpp" "tests/CMakeFiles/fedpower_tests.dir/integration/test_public_api.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/integration/test_public_api.cpp.o.d"
  "/root/repo/tests/nn/test_activation.cpp" "tests/CMakeFiles/fedpower_tests.dir/nn/test_activation.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/nn/test_activation.cpp.o.d"
  "/root/repo/tests/nn/test_checkpoint.cpp" "tests/CMakeFiles/fedpower_tests.dir/nn/test_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/nn/test_checkpoint.cpp.o.d"
  "/root/repo/tests/nn/test_dense.cpp" "tests/CMakeFiles/fedpower_tests.dir/nn/test_dense.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/nn/test_dense.cpp.o.d"
  "/root/repo/tests/nn/test_gradcheck.cpp" "tests/CMakeFiles/fedpower_tests.dir/nn/test_gradcheck.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/nn/test_gradcheck.cpp.o.d"
  "/root/repo/tests/nn/test_loss.cpp" "tests/CMakeFiles/fedpower_tests.dir/nn/test_loss.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/nn/test_loss.cpp.o.d"
  "/root/repo/tests/nn/test_matrix.cpp" "tests/CMakeFiles/fedpower_tests.dir/nn/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/nn/test_matrix.cpp.o.d"
  "/root/repo/tests/nn/test_mlp.cpp" "tests/CMakeFiles/fedpower_tests.dir/nn/test_mlp.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/nn/test_mlp.cpp.o.d"
  "/root/repo/tests/nn/test_optimizer.cpp" "tests/CMakeFiles/fedpower_tests.dir/nn/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/nn/test_optimizer.cpp.o.d"
  "/root/repo/tests/nn/test_serialize.cpp" "tests/CMakeFiles/fedpower_tests.dir/nn/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/nn/test_serialize.cpp.o.d"
  "/root/repo/tests/nn/test_training_properties.cpp" "tests/CMakeFiles/fedpower_tests.dir/nn/test_training_properties.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/nn/test_training_properties.cpp.o.d"
  "/root/repo/tests/rl/test_drift.cpp" "tests/CMakeFiles/fedpower_tests.dir/rl/test_drift.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/rl/test_drift.cpp.o.d"
  "/root/repo/tests/rl/test_exploration.cpp" "tests/CMakeFiles/fedpower_tests.dir/rl/test_exploration.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/rl/test_exploration.cpp.o.d"
  "/root/repo/tests/rl/test_neural_agent.cpp" "tests/CMakeFiles/fedpower_tests.dir/rl/test_neural_agent.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/rl/test_neural_agent.cpp.o.d"
  "/root/repo/tests/rl/test_policy.cpp" "tests/CMakeFiles/fedpower_tests.dir/rl/test_policy.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/rl/test_policy.cpp.o.d"
  "/root/repo/tests/rl/test_q_agent.cpp" "tests/CMakeFiles/fedpower_tests.dir/rl/test_q_agent.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/rl/test_q_agent.cpp.o.d"
  "/root/repo/tests/rl/test_replay_buffer.cpp" "tests/CMakeFiles/fedpower_tests.dir/rl/test_replay_buffer.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/rl/test_replay_buffer.cpp.o.d"
  "/root/repo/tests/rl/test_reward.cpp" "tests/CMakeFiles/fedpower_tests.dir/rl/test_reward.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/rl/test_reward.cpp.o.d"
  "/root/repo/tests/rl/test_reward_sweep.cpp" "tests/CMakeFiles/fedpower_tests.dir/rl/test_reward_sweep.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/rl/test_reward_sweep.cpp.o.d"
  "/root/repo/tests/rl/test_schedule.cpp" "tests/CMakeFiles/fedpower_tests.dir/rl/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/rl/test_schedule.cpp.o.d"
  "/root/repo/tests/rl/test_state.cpp" "tests/CMakeFiles/fedpower_tests.dir/rl/test_state.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/rl/test_state.cpp.o.d"
  "/root/repo/tests/rl/test_tabular.cpp" "tests/CMakeFiles/fedpower_tests.dir/rl/test_tabular.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/rl/test_tabular.cpp.o.d"
  "/root/repo/tests/sim/test_app_properties.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_app_properties.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_app_properties.cpp.o.d"
  "/root/repo/tests/sim/test_application.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_application.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_application.cpp.o.d"
  "/root/repo/tests/sim/test_contention.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_contention.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_contention.cpp.o.d"
  "/root/repo/tests/sim/test_generator.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_generator.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_generator.cpp.o.d"
  "/root/repo/tests/sim/test_governor.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_governor.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_governor.cpp.o.d"
  "/root/repo/tests/sim/test_multicore.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_multicore.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_multicore.cpp.o.d"
  "/root/repo/tests/sim/test_perf_model.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_perf_model.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_perf_model.cpp.o.d"
  "/root/repo/tests/sim/test_power_model.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_power_model.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_power_model.cpp.o.d"
  "/root/repo/tests/sim/test_processor.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_processor.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_processor.cpp.o.d"
  "/root/repo/tests/sim/test_splash2.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_splash2.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_splash2.cpp.o.d"
  "/root/repo/tests/sim/test_thermal.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_thermal.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_thermal.cpp.o.d"
  "/root/repo/tests/sim/test_trace_io.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_trace_io.cpp.o.d"
  "/root/repo/tests/sim/test_vf_table.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_vf_table.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_vf_table.cpp.o.d"
  "/root/repo/tests/sim/test_workload.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_workload.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_workload.cpp.o.d"
  "/root/repo/tests/sim/test_workload_extra.cpp" "tests/CMakeFiles/fedpower_tests.dir/sim/test_workload_extra.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/sim/test_workload_extra.cpp.o.d"
  "/root/repo/tests/util/test_config.cpp" "tests/CMakeFiles/fedpower_tests.dir/util/test_config.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/util/test_config.cpp.o.d"
  "/root/repo/tests/util/test_csv.cpp" "tests/CMakeFiles/fedpower_tests.dir/util/test_csv.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/util/test_csv.cpp.o.d"
  "/root/repo/tests/util/test_log.cpp" "tests/CMakeFiles/fedpower_tests.dir/util/test_log.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/util/test_log.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/fedpower_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/fedpower_tests.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/fedpower_tests.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/fedpower_tests.dir/util/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fedpower_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fedpower_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/fed/CMakeFiles/fedpower_fed.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/fedpower_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fedpower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedpower_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
