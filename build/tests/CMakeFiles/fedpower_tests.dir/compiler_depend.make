# Empty compiler generated dependencies file for fedpower_tests.
# This may be replaced when dependencies are built.
