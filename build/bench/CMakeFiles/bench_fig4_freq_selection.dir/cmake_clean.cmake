file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_freq_selection.dir/bench_fig4_freq_selection.cpp.o"
  "CMakeFiles/bench_fig4_freq_selection.dir/bench_fig4_freq_selection.cpp.o.d"
  "bench_fig4_freq_selection"
  "bench_fig4_freq_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_freq_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
