file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_reward.dir/bench_fig2_reward.cpp.o"
  "CMakeFiles/bench_fig2_reward.dir/bench_fig2_reward.cpp.o.d"
  "bench_fig2_reward"
  "bench_fig2_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
