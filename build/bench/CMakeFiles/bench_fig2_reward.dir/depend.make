# Empty dependencies file for bench_fig2_reward.
# This may be replaced when dependencies are built.
