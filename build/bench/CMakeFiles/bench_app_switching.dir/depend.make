# Empty dependencies file for bench_app_switching.
# This may be replaced when dependencies are built.
