file(REMOVE_RECURSE
  "CMakeFiles/bench_app_switching.dir/bench_app_switching.cpp.o"
  "CMakeFiles/bench_app_switching.dir/bench_app_switching.cpp.o.d"
  "bench_app_switching"
  "bench_app_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
