file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_local_vs_fed.dir/bench_fig3_local_vs_fed.cpp.o"
  "CMakeFiles/bench_fig3_local_vs_fed.dir/bench_fig3_local_vs_fed.cpp.o.d"
  "bench_fig3_local_vs_fed"
  "bench_fig3_local_vs_fed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_local_vs_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
