file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_silicon.dir/bench_ablation_silicon.cpp.o"
  "CMakeFiles/bench_ablation_silicon.dir/bench_ablation_silicon.cpp.o.d"
  "bench_ablation_silicon"
  "bench_ablation_silicon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_silicon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
