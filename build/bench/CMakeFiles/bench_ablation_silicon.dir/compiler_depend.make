# Empty compiler generated dependencies file for bench_ablation_silicon.
# This may be replaced when dependencies are built.
