# Empty compiler generated dependencies file for bench_ablation_exploration.
# This may be replaced when dependencies are built.
