file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_six_apps.dir/bench_fig5_six_apps.cpp.o"
  "CMakeFiles/bench_fig5_six_apps.dir/bench_fig5_six_apps.cpp.o.d"
  "bench_fig5_six_apps"
  "bench_fig5_six_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_six_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
