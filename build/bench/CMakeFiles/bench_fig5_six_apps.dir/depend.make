# Empty dependencies file for bench_fig5_six_apps.
# This may be replaced when dependencies are built.
