# Empty dependencies file for bench_multicore_contention.
# This may be replaced when dependencies are built.
