file(REMOVE_RECURSE
  "CMakeFiles/bench_multicore_contention.dir/bench_multicore_contention.cpp.o"
  "CMakeFiles/bench_multicore_contention.dir/bench_multicore_contention.cpp.o.d"
  "bench_multicore_contention"
  "bench_multicore_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicore_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
