file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_privacy.dir/bench_ablation_privacy.cpp.o"
  "CMakeFiles/bench_ablation_privacy.dir/bench_ablation_privacy.cpp.o.d"
  "bench_ablation_privacy"
  "bench_ablation_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
