file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_personalization.dir/bench_ablation_personalization.cpp.o"
  "CMakeFiles/bench_ablation_personalization.dir/bench_ablation_personalization.cpp.o.d"
  "bench_ablation_personalization"
  "bench_ablation_personalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
