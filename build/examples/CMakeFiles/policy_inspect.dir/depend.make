# Empty dependencies file for policy_inspect.
# This may be replaced when dependencies are built.
