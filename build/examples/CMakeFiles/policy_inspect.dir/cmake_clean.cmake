file(REMOVE_RECURSE
  "CMakeFiles/policy_inspect.dir/policy_inspect.cpp.o"
  "CMakeFiles/policy_inspect.dir/policy_inspect.cpp.o.d"
  "policy_inspect"
  "policy_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
