# Empty compiler generated dependencies file for secure_fleet.
# This may be replaced when dependencies are built.
