file(REMOVE_RECURSE
  "CMakeFiles/secure_fleet.dir/secure_fleet.cpp.o"
  "CMakeFiles/secure_fleet.dir/secure_fleet.cpp.o.d"
  "secure_fleet"
  "secure_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
