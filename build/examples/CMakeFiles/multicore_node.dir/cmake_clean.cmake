file(REMOVE_RECURSE
  "CMakeFiles/multicore_node.dir/multicore_node.cpp.o"
  "CMakeFiles/multicore_node.dir/multicore_node.cpp.o.d"
  "multicore_node"
  "multicore_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
