# Empty dependencies file for multicore_node.
# This may be replaced when dependencies are built.
