# Empty compiler generated dependencies file for multicore_node.
# This may be replaced when dependencies are built.
